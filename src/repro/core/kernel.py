"""The StRoM kernel framework: Listing 1's hardware interface in Python.

A kernel is deployed on the data path between the RoCE stack and the DMA
engine and communicates exclusively over eight streams::

    void strom_kernel(stream<ap_uint<24>>&  qpnIn,
                      stream<ap_uint<256>>& paramIn,
                      stream<net_axis<512>>& roceDataIn,
                      stream<memCmd>&        dmaCmdOut,
                      stream<net_axis<512>>& dmaDataOut,
                      stream<net_axis<512>>& dmaDataIn,
                      stream<roceMeta>&      roceMetaOut,
                      stream<net_axis<512>>& roceDataOut);

The Python mirror keeps the same eight channels with the same directions.
Timing: a kernel charges its own pipeline costs through
:meth:`StromKernel.charge_cycles` / :meth:`StromKernel.charge_streaming`;
a kernel achieving initiation interval II=1 consumes one data-path word
per clock, i.e. line rate (Section 3.4, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..config import NicConfig
from ..obs.runtime import trace_for
from ..sim import Simulator, Stream


@dataclass(frozen=True)
class MemCmd:
    """A DMA command issued by a kernel (12 B command bus of Figure 4)."""

    vaddr: int
    length: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("DMA length must be positive")
        if self.vaddr < 0:
            raise ValueError("negative address")


@dataclass(frozen=True)
class RoceMeta:
    """TX metadata a kernel emits to send an RDMA WRITE over the network
    (20 B bus of Figure 4: QPN + target virtual address + length)."""

    qpn: int
    target_vaddr: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("negative length")


@dataclass(frozen=True)
class RpcInvocation:
    """What arrives on the qpnIn/paramIn streams for one RPC."""

    qpn: int
    params: bytes


class KernelStreams:
    """The eight FIFOs of the fixed kernel interface."""

    def __init__(self, env: Simulator, depth: int = 64) -> None:
        self.qpn_in = Stream(env, name="qpnIn")
        self.param_in = Stream(env, name="paramIn")
        self.roce_data_in = Stream(env, name="roceDataIn")
        self.dma_cmd_out = Stream(env, capacity=depth, name="dmaCmdOut")
        self.dma_data_out = Stream(env, capacity=depth, name="dmaDataOut")
        self.dma_data_in = Stream(env, name="dmaDataIn")
        self.roce_meta_out = Stream(env, capacity=depth, name="roceMetaOut")
        self.roce_data_out = Stream(env, capacity=depth, name="roceDataOut")


class StromKernel:
    """Base class for StRoM kernels.

    Subclasses implement :meth:`run` as a simulation process that loops
    forever serving invocations.  The NIC wires the streams to the RoCE
    stack and the DMA engine and starts the kernel when it is deployed.
    """

    #: Human-readable kernel name (diagnostics only).
    name = "strom-kernel"

    def __init__(self, env: Simulator, config: NicConfig) -> None:
        self.env = env
        self.config = config
        self.streams = KernelStreams(env)
        self.invocations = 0
        #: Flight recorder while an obs session is active, else None.
        self.trace = trace_for(env)
        #: Span source label; the NIC overrides this at deploy time with
        #: a NIC-qualified name (e.g. ``nic0.kernel.strom-kv``).
        self.trace_source = f"kernel.{self.name}"
        self._invocation_span = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the kernel's process(es)."""
        self.env.process(self.run())

    def run(self) -> Generator:
        """The kernel's main loop; must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    def charge_cycles(self, cycles: int):
        """Event: ``cycles`` of the RoCE clock (fixed pipeline latency)."""
        return self.env.timeout(self.config.cycles(cycles))

    def charge_streaming(self, num_bytes: int):
        """Event: stream ``num_bytes`` through an II=1 pipeline stage.

        In :attr:`NicConfig.per_word_accounting` mode the charge runs as
        a process of one timeout per data-path word; it completes at the
        same picosecond as the batched timeout.
        """
        config = self.config
        if config.per_word_accounting:
            return self.env.process(
                config.streaming_charge(self.env, num_bytes))
        return self.env.timeout(config.streaming_time(num_bytes))

    # ------------------------------------------------------------------
    # Stream conveniences (process helpers, use with ``yield from``)
    # ------------------------------------------------------------------
    def next_invocation(self):
        """Wait for the next RPC: reads qpnIn and paramIn together, the
        way every published kernel's first stage does (Listing 3)."""
        if self.trace is not None and self._invocation_span is not None:
            # The previous invocation ends where the kernel loops back
            # for the next one (kernels block forever on qpnIn).
            self.trace.end_span(self._invocation_span)
            self._invocation_span = None
        qpn = yield self.streams.qpn_in.get()
        params = yield self.streams.param_in.get()
        self.invocations += 1
        if self.trace is not None:
            self._invocation_span = self.trace.begin_span(
                self.trace_source, "invocation", qpn=qpn)
        return RpcInvocation(qpn=qpn, params=params)

    def dma_read(self, vaddr: int, length: int):
        """Issue a DMA read command and wait for the data."""
        yield self.streams.dma_cmd_out.put(
            MemCmd(vaddr=vaddr, length=length, is_write=False))
        data = yield self.streams.dma_data_in.get()
        return data

    def dma_write(self, vaddr: int, data: bytes):
        """Issue a DMA write command followed by its data."""
        yield self.streams.dma_cmd_out.put(
            MemCmd(vaddr=vaddr, length=len(data), is_write=True))
        yield self.streams.dma_data_out.put(data)

    def send_to_network(self, qpn: int, target_vaddr: int, data: bytes):
        """Emit an RDMA WRITE of ``data`` to the requester's memory."""
        yield self.streams.roce_meta_out.put(
            RoceMeta(qpn=qpn, target_vaddr=target_vaddr, length=len(data)))
        yield self.streams.roce_data_out.put(data)

    def receive_payload(self):
        """Wait for one RPC WRITE payload chunk on roceDataIn."""
        chunk = yield self.streams.roce_data_in.get()
        return chunk
