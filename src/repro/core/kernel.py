"""The StRoM kernel framework: Listing 1's hardware interface in Python.

A kernel is deployed on the data path between the RoCE stack and the DMA
engine and communicates exclusively over eight streams::

    void strom_kernel(stream<ap_uint<24>>&  qpnIn,
                      stream<ap_uint<256>>& paramIn,
                      stream<net_axis<512>>& roceDataIn,
                      stream<memCmd>&        dmaCmdOut,
                      stream<net_axis<512>>& dmaDataOut,
                      stream<net_axis<512>>& dmaDataIn,
                      stream<roceMeta>&      roceMetaOut,
                      stream<net_axis<512>>& roceDataOut);

The Python mirror keeps the same eight channels with the same directions.
Timing: a kernel charges its own pipeline costs through
:meth:`StromKernel.charge_cycles` / :meth:`StromKernel.charge_streaming`;
a kernel achieving initiation interval II=1 consumes one data-path word
per clock, i.e. line rate (Section 3.4, footnote 3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator, Optional

from ..config import NicConfig
from ..obs.runtime import trace_for
from ..sim import Simulator, Stream
from .guard import ABORT_SENTINEL, KernelAbort, KernelGuard
from .rpc import (RPC_ERROR_BAD_PARAMS, RPC_ERROR_QUARANTINED,
                  RPC_ERROR_TIMEOUT, RpcPreamble, rpc_error_bytes)


@dataclass(frozen=True)
class MemCmd:
    """A DMA command issued by a kernel (12 B command bus of Figure 4)."""

    vaddr: int
    length: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("DMA length must be positive")
        if self.vaddr < 0:
            raise ValueError("negative address")


@dataclass(frozen=True)
class RoceMeta:
    """TX metadata a kernel emits to send an RDMA WRITE over the network
    (20 B bus of Figure 4: QPN + target virtual address + length)."""

    qpn: int
    target_vaddr: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("negative length")


@dataclass(frozen=True)
class RpcInvocation:
    """What arrives on the qpnIn/paramIn streams for one RPC."""

    qpn: int
    params: bytes


class KernelStreams:
    """The eight FIFOs of the fixed kernel interface."""

    def __init__(self, env: Simulator, depth: int = 64) -> None:
        self.qpn_in = Stream(env, name="qpnIn")
        self.param_in = Stream(env, name="paramIn")
        self.roce_data_in = Stream(env, name="roceDataIn")
        self.dma_cmd_out = Stream(env, capacity=depth, name="dmaCmdOut")
        self.dma_data_out = Stream(env, capacity=depth, name="dmaDataOut")
        self.dma_data_in = Stream(env, name="dmaDataIn")
        self.roce_meta_out = Stream(env, capacity=depth, name="roceMetaOut")
        self.roce_data_out = Stream(env, capacity=depth, name="roceDataOut")

    def drain_inputs(self) -> int:
        """Discard queued input data after an aborted invocation.

        Clears ``dmaDataIn`` (stale read completions, wake-up
        sentinels) and ``roceDataIn`` (stale RPC WRITE payload).  The
        kernel process is the sole consumer of both, so no blocked
        getter can be mid-transfer.  Output streams are left alone:
        commands already queued passed validation (posted writes cannot
        be recalled, as on real hardware) and the TX adapter may be
        mid-pair on meta/data."""
        return self.dma_data_in.clear() + self.roce_data_in.clear()

    def discard_sentinels(self) -> int:
        """Drop stale watchdog sentinels after a clean completion."""
        return (self.dma_data_in.discard(ABORT_SENTINEL)
                + self.roce_data_in.discard(ABORT_SENTINEL))


class StromKernel:
    """Base class for StRoM kernels.

    Subclasses implement :meth:`parse_params` (raises on a malformed
    parameter block) and :meth:`serve` (a generator handling one
    invocation); the base :meth:`run` loop turns parse failures into
    ``RPC_ERROR_BAD_PARAMS`` completions and — for kernels deployed
    with a :class:`~repro.core.guard.KernelGuard` — enforces protection
    domains, watchdog budgets and the quarantine latch.  The NIC wires
    the streams to the RoCE stack and the DMA engine and starts the
    kernel when it is deployed.
    """

    #: Human-readable kernel name (diagnostics only).
    name = "strom-kernel"

    def __init__(self, env: Simulator, config: NicConfig) -> None:
        self.env = env
        self.config = config
        self.streams = KernelStreams(env)
        self.invocations = 0
        #: Hardening state; None unless deployed with protection/budget.
        self.guard: Optional[KernelGuard] = None
        #: Invocations answered with RPC_ERROR_BAD_PARAMS.
        self.params_rejected = 0
        #: Invocations aborted by the guard (any error code).
        self.aborts = 0
        #: Queued invocations refused because the kernel is quarantined.
        self.invocations_refused = 0
        #: Fault-injection hook: a positive sim-time makes the kernel
        #: stall (a stuck pipeline stage) until that instant.
        self.stall_until = 0
        #: Invariant monitors while REPRO_CHECK is active, else None.
        from ..check import checker_for  # runtime import; avoids a cycle
        self.check = checker_for(env)
        #: Flight recorder while an obs session is active, else None.
        self.trace = trace_for(env)
        #: Span source label; the NIC overrides this at deploy time with
        #: a NIC-qualified name (e.g. ``nic0.kernel.strom-kv``).
        self.trace_source = f"kernel.{self.name}"
        self._invocation_span = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the kernel's process(es)."""
        self.env.process(self.run())

    def parse_params(self, raw: bytes):
        """Decode the invocation's parameter block.

        ``ValueError`` / ``struct.error`` / ``KeyError`` raised here
        answer the requester with ``RPC_ERROR_BAD_PARAMS`` instead of
        crashing the kernel process."""
        return raw

    def serve(self, invocation: RpcInvocation, params) -> Generator:
        """Handle one invocation; must be overridden."""
        raise NotImplementedError
        yield  # pragma: no cover

    def run(self) -> Generator:
        """The shared main loop: parse, guard, serve, complete."""
        while True:
            invocation = yield from self.next_invocation()
            guard = self.guard
            try:
                params = self.parse_params(invocation.params)
            except (ValueError, KeyError, struct.error):
                self.params_rejected += 1
                yield from self._complete_error(
                    invocation, RPC_ERROR_BAD_PARAMS)
                continue
            if guard is not None:
                if guard.quarantined:
                    # Dispatched before the quarantine latched; answer
                    # without serving (the NIC refuses newer RPCs).
                    self.invocations_refused += 1
                    yield from self._complete_error(
                        invocation, RPC_ERROR_QUARANTINED)
                    continue
                if self.check is not None:
                    self.check.on_kernel_serve(self)
                guard.begin(self.env.now)
                if guard.budget is not None \
                        and guard.budget.deadline_ps is not None:
                    self.env.process(self._watchdog(guard, guard.epoch))
            try:
                yield from self.serve(invocation, params)
            except KernelAbort as abort:
                self.aborts += 1
                self.streams.drain_inputs()
                if guard is not None:
                    guard.note_abort(abort.code)
                yield from self._complete_error(invocation, abort.code)
            except ValueError:
                # Malformed parameters only discovered mid-serve (e.g.
                # a value position beyond the element size).
                self.params_rejected += 1
                self.streams.drain_inputs()
                if guard is not None and guard.active:
                    guard.abandon()
                yield from self._complete_error(
                    invocation, RPC_ERROR_BAD_PARAMS)
            else:
                if guard is not None:
                    if guard.pending_abort is not None:
                        # Watchdog fired after the response was already
                        # emitted: completed, but clean up its wake-ups.
                        self.streams.discard_sentinels()
                    guard.finish()
                    if self.check is not None:
                        self.check.on_kernel_finish(self)

    def _complete_error(self, invocation: RpcInvocation, code: int):
        """Write an 8-byte error completion to the response buffer."""
        try:
            preamble = RpcPreamble.unpack(invocation.params)
        except ValueError:
            return  # not even a preamble: nowhere to respond
        yield from self.send_to_network(
            invocation.qpn, preamble.response_vaddr, rpc_error_bytes(code))

    def _watchdog(self, guard: KernelGuard, epoch: int) -> Generator:
        """Deadline watchdog for one invocation (spawned only when a
        deadline budget is set — zero events otherwise)."""
        yield self.env.timeout(guard.budget.deadline_ps)
        if guard.epoch != epoch or not guard.active:
            return  # invocation already over
        guard.expire(RPC_ERROR_TIMEOUT, "invocation deadline exceeded")
        # Wake the kernel if it is blocked waiting for input.
        self.streams.dma_data_in.try_put(ABORT_SENTINEL)
        self.streams.roce_data_in.try_put(ABORT_SENTINEL)

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    def charge_cycles(self, cycles: int):
        """Event: ``cycles`` of the RoCE clock (fixed pipeline latency)."""
        return self.env.timeout(self.config.cycles(cycles))

    def charge_streaming(self, num_bytes: int):
        """Event: stream ``num_bytes`` through an II=1 pipeline stage.

        In :attr:`NicConfig.per_word_accounting` mode the charge runs as
        a process of one timeout per data-path word; it completes at the
        same picosecond as the batched timeout.
        """
        config = self.config
        if config.per_word_accounting:
            return self.env.process(
                config.streaming_charge(self.env, num_bytes))
        return self.env.timeout(config.streaming_time(num_bytes))

    # ------------------------------------------------------------------
    # Stream conveniences (process helpers, use with ``yield from``)
    # ------------------------------------------------------------------
    def next_invocation(self):
        """Wait for the next RPC: reads qpnIn and paramIn together, the
        way every published kernel's first stage does (Listing 3)."""
        if self.trace is not None and self._invocation_span is not None:
            # The previous invocation ends where the kernel loops back
            # for the next one (kernels block forever on qpnIn).
            self.trace.end_span(self._invocation_span)
            self._invocation_span = None
        qpn = yield self.streams.qpn_in.get()
        params = yield self.streams.param_in.get()
        self.invocations += 1
        if self.trace is not None:
            self._invocation_span = self.trace.begin_span(
                self.trace_source, "invocation", qpn=qpn)
        return RpcInvocation(qpn=qpn, params=params)

    def dma_read(self, vaddr: int, length: int):
        """Issue a DMA read command and wait for the data.

        With a guard attached the access is validated against the
        protection domain and charged against the DMA quota *before*
        the command is enqueued; a violation raises
        :class:`~repro.core.guard.KernelAbort`."""
        guard = self.guard
        if guard is not None and guard.active:
            guard.charge_dma(vaddr, length, False, self.env.now)
        yield self.streams.dma_cmd_out.put(
            MemCmd(vaddr=vaddr, length=length, is_write=False))
        data = yield self.streams.dma_data_in.get()
        if data is ABORT_SENTINEL:
            raise guard.take_abort()
        if self.stall_until:
            yield from self._stall()
        return data

    def dma_write(self, vaddr: int, data: bytes):
        """Issue a DMA write command followed by its data."""
        guard = self.guard
        if guard is not None and guard.active:
            guard.charge_dma(vaddr, len(data), True, self.env.now)
        yield self.streams.dma_cmd_out.put(
            MemCmd(vaddr=vaddr, length=len(data), is_write=True))
        yield self.streams.dma_data_out.put(data)

    def send_to_network(self, qpn: int, target_vaddr: int, data: bytes):
        """Emit an RDMA WRITE of ``data`` to the requester's memory."""
        guard = self.guard
        if guard is not None and guard.active:
            guard.check_live(self.env.now)
        yield self.streams.roce_meta_out.put(
            RoceMeta(qpn=qpn, target_vaddr=target_vaddr, length=len(data)))
        yield self.streams.roce_data_out.put(data)

    def receive_payload(self):
        """Wait for one RPC WRITE payload chunk on roceDataIn."""
        guard = self.guard
        if guard is not None and guard.active:
            guard.check_live(self.env.now)
        chunk = yield self.streams.roce_data_in.get()
        if chunk is ABORT_SENTINEL:
            raise guard.take_abort()
        if self.stall_until:
            yield from self._stall()
        return chunk

    def _stall(self):
        """Serve an injected stuck-pipeline fault, then re-check the
        watchdog so a stalled invocation aborts promptly."""
        now = self.env.now
        if self.stall_until > now:
            yield self.env.timeout(self.stall_until - now)
        guard = self.guard
        if guard is not None and guard.active:
            guard.check_live(self.env.now)
