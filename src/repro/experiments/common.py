"""Shared experiment infrastructure: result tables and the detailed
measurement procedures used by the latency figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..host import build_fabric
from ..sim import MS, LatencySample, LatencySummary, Simulator, timebase


@dataclass
class ExperimentResult:
    """One reproduced table/figure: labelled rows, ready to print."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        widths = {c: len(c) for c in self.columns}
        for row in self.rows:
            for c in self.columns:
                widths[c] = max(widths[c], len(fmt(row.get(c, ""))))
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-" * len(header)
        lines = [f"== {self.experiment_id}: {self.title} ==", header, rule]
        for row in self.rows:
            lines.append("  ".join(
                fmt(row.get(c, "")).rjust(widths[c]) for c in self.columns))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """GitHub-flavoured markdown rendering of the result table."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(
                fmt(row.get(c, "")) for c in self.columns) + " |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        return "\n".join(lines)


def run_proc(env: Simulator, gen, limit: Optional[int] = None):
    return env.run_until_complete(env.process(gen), limit=limit)


# ---------------------------------------------------------------------------
# Detailed latency measurements (Figures 5a, 12a)
# ---------------------------------------------------------------------------

def measure_write_latency(nic_config: NicConfig = NIC_10G,
                          host_config: HostConfig = HOST_DEFAULT,
                          payload_bytes: int = 64,
                          iterations: int = 50,
                          seed: int = 1) -> LatencySummary:
    """The paper's write-latency methodology (Section 6.1): a polling
    ping-pong between two machines; reported latency is RTT/2."""
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    client, server = fabric.client, fabric.server
    c_buf = client.alloc(max(payload_bytes, 64) * 2, "pingpong_c")
    s_buf = server.alloc(max(payload_bytes, 64) * 2, "pingpong_s")
    client.space.write(c_buf.vaddr, b"\x5A" * payload_bytes)
    sample = LatencySample(f"write-{payload_bytes}B")

    def server_loop():
        for _ in range(iterations):
            yield from server.wait_for_data(s_buf.vaddr, payload_bytes)
            yield from server.write(fabric.server_qpn, s_buf.vaddr,
                                    c_buf.vaddr, payload_bytes,
                                    signalled=False)

    def client_loop():
        env.process(server_loop())
        for _ in range(iterations):
            start = env.now
            yield from client.write(fabric.client_qpn, c_buf.vaddr,
                                    s_buf.vaddr, payload_bytes,
                                    signalled=False)
            yield from client.wait_for_data(c_buf.vaddr, payload_bytes)
            sample.record((env.now - start) // 2)

    run_proc(env, client_loop(), limit=iterations * 10 * MS)
    return sample.summary()


def measure_read_latency(nic_config: NicConfig = NIC_10G,
                         host_config: HostConfig = HOST_DEFAULT,
                         payload_bytes: int = 64,
                         iterations: int = 50,
                         seed: int = 2) -> LatencySummary:
    """READ latency: post one READ, wait for the data to land locally."""
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    client, server = fabric.client, fabric.server
    local = client.alloc(max(payload_bytes, 64) * 2, "read_dst")
    remote = server.alloc(max(payload_bytes, 64) * 2, "read_src")
    server.space.write(remote.vaddr, b"\xA5" * payload_bytes)
    sample = LatencySample(f"read-{payload_bytes}B")

    def client_loop():
        for _ in range(iterations):
            start = env.now
            # The application detects completion by polling on the last
            # bytes of the destination buffer (same methodology as the
            # write ping-pong): register the watch, post, poll.
            watch = client.nic.dma.watch(local.vaddr, payload_bytes)
            yield from client.read(fabric.client_qpn, local.vaddr,
                                   remote.vaddr, payload_bytes)
            yield watch
            jitter = client._rng.randrange(
                client.host_config.poll_interval + 1)
            yield env.timeout(jitter + client.host_config.dram_latency)
            sample.record(env.now - start)

    run_proc(env, client_loop(), limit=iterations * 10 * MS)
    return sample.summary()


# ---------------------------------------------------------------------------
# Detailed throughput / message-rate spot checks (validate the flow model)
# ---------------------------------------------------------------------------

def measure_write_throughput(nic_config: NicConfig = NIC_10G,
                             host_config: HostConfig = HOST_DEFAULT,
                             payload_bytes: int = 4096,
                             messages: int = 64,
                             seed: int = 3) -> float:
    """Goodput (Gbit/s) of ``messages`` pipelined writes (detailed sim)."""
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    client = fabric.client
    src = client.alloc(payload_bytes, "tp_src")
    dst = fabric.server.alloc(payload_bytes, "tp_dst")
    client.space.write(src.vaddr, b"\xEE" * payload_bytes)

    def client_loop():
        start = env.now
        last = None
        for _ in range(messages):
            last = yield from client.write(fabric.client_qpn, src.vaddr,
                                           dst.vaddr, payload_bytes)
        yield last
        elapsed = env.now - start
        return messages * payload_bytes * 8 / timebase.to_seconds(elapsed)

    bits_per_second = run_proc(env, client_loop(),
                               limit=messages * 100 * MS)
    return bits_per_second / 1e9


def measure_message_rate(nic_config: NicConfig = NIC_10G,
                         host_config: HostConfig = HOST_DEFAULT,
                         payload_bytes: int = 64,
                         messages: int = 400,
                         seed: int = 4) -> float:
    """Write message rate in Mmsg/s (detailed sim)."""
    gbps = measure_write_throughput(nic_config, host_config,
                                    payload_bytes, messages, seed)
    return gbps * 1e9 / (payload_bytes * 8) / 1e6
