"""Figure 7: traversing a remote linked list three ways.

Latency of looking up a random key in a remote linked list of length
{4, 8, 16, 32} (value size 64 B) using conventional RDMA READs (one
network round trip per element), the StRoM traversal kernel (one round
trip total, one PCIe access per element), and a TCP/rpcgen RPC executed
by the remote CPU (flat in the list length).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..core.rpc import RpcOpcode
from ..host import build_fabric
from ..host.tcp_rpc import TcpRpcChannel
from ..kernels.traversal import PredicateOp, TraversalKernel, TraversalParams
from ..sim import MS, LatencySample, Simulator
from .common import ExperimentResult, run_proc

LIST_LENGTHS = [4, 8, 16, 32]
VALUE_BYTES = 64


def _build_linked_list(server, keys, value_bytes):
    """Figure 6 layout: key @ pos 0, next @ pos 2, value ptr @ pos 4."""
    elements = server.alloc(64 * len(keys), "list")
    values = server.alloc(value_bytes * len(keys), "values")
    addresses = [elements.vaddr + 64 * i for i in range(len(keys))]
    for i, key in enumerate(keys):
        value_addr = values.vaddr + value_bytes * i
        server.space.write(value_addr, bytes([(i + 1) % 256]) * value_bytes)
        next_ptr = addresses[i + 1] if i + 1 < len(keys) else 0
        element = (key.to_bytes(8, "little")
                   + next_ptr.to_bytes(8, "little")
                   + value_addr.to_bytes(8, "little"))
        server.space.write(addresses[i], element.ljust(64, b"\x00"))
    return addresses


def linked_list_experiment(nic_config: NicConfig = NIC_10G,
                           host_config: HostConfig = HOST_DEFAULT,
                           lengths: Optional[List[int]] = None,
                           iterations: int = 30,
                           value_bytes: int = VALUE_BYTES,
                           seed: int = 7) -> ExperimentResult:
    lengths = lengths or LIST_LENGTHS
    result = ExperimentResult(
        experiment_id="fig7",
        title="Remote linked-list traversal latency (median us, "
              f"value {value_bytes} B)",
        columns=["list_length", "rdma_read_us", "strom_us", "tcp_rpc_us",
                 "read_p99_us", "strom_p99_us", "tcp_p99_us"],
        notes="READ grows linearly (one RTT per hop); StRoM sublinearly "
              "(one PCIe access per hop); TCP RPC is flat")
    for length in lengths:
        rows = _measure_for_length(nic_config, host_config, length,
                                   iterations, value_bytes, seed)
        result.add_row(list_length=length, **rows)
    return result


def _measure_for_length(nic_config, host_config, length, iterations,
                        value_bytes, seed):
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    client, server = fabric.client, fabric.server
    kernel = TraversalKernel(env, server.nic.config)
    server.nic.deploy_kernel(RpcOpcode.TRAVERSAL, kernel)
    tcp = TcpRpcChannel(env, host_config, seed=seed)

    keys = [1000 + i for i in range(length)]
    addresses = _build_linked_list(server, keys, value_bytes)
    entry_buf = client.alloc(64 * 2, "entry")
    value_buf = client.alloc(max(value_bytes, 64) * 2, "value")
    rng = random.Random(seed)

    read_sample = LatencySample("read")
    strom_sample = LatencySample("strom")
    tcp_sample = LatencySample("tcp")

    def via_reads(key, position):
        start = env.now
        address = addresses[0]
        for _hop in range(length):
            yield from client.read_sync(fabric.client_qpn, entry_buf.vaddr,
                                        address, 64)
            entry = client.space.read(entry_buf.vaddr, 64)
            entry_key = int.from_bytes(entry[0:8], "little")
            next_ptr = int.from_bytes(entry[8:16], "little")
            value_ptr = int.from_bytes(entry[16:24], "little")
            if entry_key == key:
                yield from client.read_sync(fabric.client_qpn,
                                            value_buf.vaddr, value_ptr,
                                            value_bytes)
                break
            address = next_ptr
        read_sample.record(env.now - start)

    def via_strom(key):
        start = env.now
        params = TraversalParams(
            response_vaddr=value_buf.vaddr, remote_address=addresses[0],
            value_size=value_bytes, key=key, key_mask=1,
            predicate_op=PredicateOp.EQUAL, value_ptr_position=4,
            is_relative_position=False, next_element_ptr_position=2,
            next_element_ptr_valid=True)
        yield from client.post_rpc(fabric.client_qpn, RpcOpcode.TRAVERSAL,
                                   params.pack())
        yield from client.wait_for_data(value_buf.vaddr,
                                        min(value_bytes, 8))
        strom_sample.record(env.now - start)

    def via_tcp(position):
        start = env.now
        yield from tcp.call(
            request_bytes=32,
            server_work=tcp.linked_list_handler(position + 1, value_bytes))
        tcp_sample.record(env.now - start)

    def driver():
        for i in range(iterations):
            # Uniform coverage of lookup depths: cycle the positions
            # (same expected hop count as the paper's random pick, but
            # stable medians at small iteration counts).
            position = (i * 7 + rng.randrange(2)) % length
            key = keys[position]
            yield from via_reads(key, position)
            yield from via_strom(key)
            yield from via_tcp(position)

    run_proc(env, driver(), limit=iterations * 100 * MS)
    read = read_sample.summary()
    strom = strom_sample.summary()
    tcp_summary = tcp_sample.summary()
    return {
        "rdma_read_us": read.median_us,
        "strom_us": strom.median_us,
        "tcp_rpc_us": tcp_summary.median_us,
        "read_p99_us": read.p99_us,
        "strom_p99_us": strom.p99_us,
        "tcp_p99_us": tcp_summary.p99_us,
    }
