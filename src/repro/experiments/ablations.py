"""Ablations over the design-space knobs the paper calls out.

- **Interconnect latency** (footnote 7): StRoM's traversal advantage is
  bounded by the PCIe read round trip (~1.5 us); CXL/CAPI-class
  interconnects shrink the per-hop cost.
- **Data-path width** (Sections 3.5/4.1): 8 B -> 64 B at 156.25 MHz
  spans 10-80 Gbit/s, trading on-chip resources for bandwidth.
- **Outstanding READs** (Section 4.1): the Multi-Queue depth bounds the
  read message rate via the bandwidth-delay product.
- **Doorbell batching** (Section 7.1): amortizing the per-message MMIO
  store removes the host-side message-rate cap at 100 G.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import HOST_DEFAULT, NIC_10G, NIC_100G, HostConfig, scaled_config
from ..fpga import XCVU9P, estimate_nic_resources
from ..sim.timebase import NS
from . import flowmodel
from .common import ExperimentResult
from .fig07_linked_list import linked_list_experiment

#: Interconnect scenarios: (name, NIC-side read round trip).
INTERCONNECTS = [
    ("PCIe Gen3", 1500 * NS),
    ("CXL-class", 600 * NS),
    ("CAPI-next", 250 * NS),
]


def interconnect_latency_ablation(list_length: int = 16,
                                  iterations: int = 10
                                  ) -> ExperimentResult:
    """Footnote 7: how much faster does remote pointer chasing get when
    the FPGA's memory interconnect improves?"""
    result = ExperimentResult(
        experiment_id="ablation-interconnect",
        title=f"Traversal kernel vs NIC-memory interconnect "
              f"(list length {list_length})",
        columns=["interconnect", "read_rtt_ns", "strom_us",
                 "rdma_read_us", "speedup"],
        notes="each traversal hop costs one interconnect round trip; "
              "CXL/CAPI shrink it (paper footnote 7)")
    for name, rtt in INTERCONNECTS:
        config = scaled_config(NIC_10G, pcie_read_latency=rtt)
        sweep = linked_list_experiment(nic_config=config,
                                       lengths=[list_length],
                                       iterations=iterations)
        row = sweep.rows[0]
        result.add_row(interconnect=name,
                       read_rtt_ns=rtt // NS,
                       strom_us=row["strom_us"],
                       rdma_read_us=row["rdma_read_us"],
                       speedup=row["rdma_read_us"] / row["strom_us"])
    return result


def datapath_width_ablation(widths: Optional[List[int]] = None
                            ) -> ExperimentResult:
    """Sections 3.5/4.1: the data path scales in power-of-two steps from
    8 B to 64 B, giving 10-80 Gbit/s at 156.25 MHz; state structures are
    untouched, so resources grow sublinearly."""
    widths = widths or [8, 16, 32, 64]
    result = ExperimentResult(
        experiment_id="ablation-datapath",
        title="Data-path width scaling at 156.25 MHz (Section 4.1)",
        columns=["width_B", "line_rate_gbps", "peak_goodput_gbps",
                 "luts_k", "bram", "ffs_k"],
        notes="'The width can be varied from 8 B to 64 B resulting in a "
              "bandwidth of 10-80 Gbit/s at 156.25 MHz'")
    for width in widths:
        line_rate = width * 8 * 156.25e6
        config = scaled_config(NIC_10G, datapath_bytes=width,
                               line_rate_bps=line_rate,
                               pcie_bandwidth_bps=max(60e9, line_rate * 1.2))
        point = flowmodel.write_throughput(config, HOST_DEFAULT, 1 << 20)
        usage = estimate_nic_resources(config, XCVU9P)
        result.add_row(width_B=width,
                       line_rate_gbps=line_rate / 1e9,
                       peak_goodput_gbps=point.goodput_gbps,
                       luts_k=usage.luts / 1000.0,
                       bram=usage.bram_36kb,
                       ffs_k=usage.flip_flops / 1000.0)
    return result


def outstanding_reads_ablation(depths: Optional[List[int]] = None,
                               payload_bytes: int = 64
                               ) -> ExperimentResult:
    """Section 4.1: the Multi-Queue's total capacity bounds outstanding
    READs; small depths throttle the read rate to depth/RTT."""
    depths = depths or [1, 2, 4, 8, 16, 32, 64]
    result = ExperimentResult(
        experiment_id="ablation-outstanding-reads",
        title=f"READ message rate vs Multi-Queue depth "
              f"({payload_bytes} B payloads, 10 G)",
        columns=["depth", "read_mops", "bottleneck"],
        notes="rate = min(wire, host, outstanding/RTT): the Multi-Queue "
              "must cover the bandwidth-delay product")
    for depth in depths:
        config = scaled_config(NIC_10G, max_outstanding_reads=depth)
        point = flowmodel.read_throughput(config, HOST_DEFAULT,
                                          payload_bytes)
        result.add_row(depth=depth,
                       read_mops=point.message_rate_mops,
                       bottleneck=point.bottleneck)
    return result


def doorbell_batching_ablation(batch_sizes: Optional[List[int]] = None,
                               payload_bytes: int = 256,
                               host: HostConfig = HOST_DEFAULT
                               ) -> ExperimentResult:
    """Section 7.1: 'Batching of application commands will eliminate
    this limitation of the current implementation.'"""
    batch_sizes = batch_sizes or [1, 2, 4, 8, 16, 32]
    result = ExperimentResult(
        experiment_id="ablation-batching",
        title=f"100 G message rate vs doorbell batch size "
              f"({payload_bytes} B payloads)",
        columns=["batch_size", "write_mops", "goodput_gbps", "bottleneck"],
        notes="one MMIO store per batch amortizes the host command cost")
    for batch in batch_sizes:
        point = flowmodel.write_throughput(NIC_100G, host, payload_bytes,
                                           batch_size=batch)
        result.add_row(batch_size=batch,
                       write_mops=point.message_rate_mops,
                       goodput_gbps=point.goodput_gbps,
                       bottleneck=point.bottleneck)
    return result
