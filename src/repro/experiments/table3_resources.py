"""Table 3 and the Section 6.1 utilization numbers.

Table 3 compares the 10 G and 100 G StRoM builds on the VCU118 (XCVU9P);
Section 6.1 reports the Virtex-7 deployment (24 % logic; 9 % -> 20 % of
on-chip memory going from 500 to 16,000 QPs).
"""

from __future__ import annotations

from ..config import NIC_10G, NIC_100G, scaled_config
from ..fpga import XC7VX690T, XCVU9P, estimate_nic_resources
from .common import ExperimentResult


def table3_experiment() -> ExperimentResult:
    """Table 3: resource usage of StRoM for 500 QPs on the VCU118."""
    result = ExperimentResult(
        experiment_id="table3",
        title="Resource usage of StRoM for 500 QPs on VCU118 (XCVU9P)",
        columns=["build", "luts_k", "luts_pct", "bram", "bram_pct",
                 "ffs_k", "ffs_pct"],
        notes="paper: 10G = 92K/7.8% LUT, 181/8.4% BRAM, 115K/4.8% FF; "
              "100G = 122K/10.3%, 402/18.6%, 214K/9.1%")
    for config in (NIC_10G, NIC_100G):
        usage = estimate_nic_resources(config, XCVU9P)
        result.add_row(build=config.name,
                       luts_k=usage.luts / 1000.0,
                       luts_pct=100.0 * usage.lut_fraction,
                       bram=usage.bram_36kb,
                       bram_pct=100.0 * usage.bram_fraction,
                       ffs_k=usage.flip_flops / 1000.0,
                       ffs_pct=100.0 * usage.ff_fraction)
    return result


def virtex7_experiment() -> ExperimentResult:
    """Section 6.1: the 10 G deployment on the Virtex-7, including the
    500 -> 16,000 queue-pair scaling behaviour."""
    result = ExperimentResult(
        experiment_id="sec6.1",
        title="StRoM 10G on the Virtex-7 XC7VX690T (QP scaling)",
        columns=["queue_pairs", "logic_pct", "bram_pct", "logic_delta_pct"],
        notes="paper: 24% logic; 9% BRAM at 500 QPs growing to 20% at "
              "16,000 QPs with < 1% extra logic")
    base = estimate_nic_resources(NIC_10G, XC7VX690T)
    for qps in (500, 2000, 8000, 16000):
        config = scaled_config(NIC_10G, num_queue_pairs=qps)
        usage = estimate_nic_resources(config, XC7VX690T)
        result.add_row(
            queue_pairs=qps,
            logic_pct=100.0 * usage.lut_fraction,
            bram_pct=100.0 * usage.bram_fraction,
            logic_delta_pct=100.0 * (usage.luts - base.luts)
            / XC7VX690T.luts)
    return result
