"""Figure 8: remote hash-table GET latency while varying the value size.

Pilaf-style layout: a region of fixed-size entries pointing into a value
region.  The best case is assumed (the first entry matches), so the READ
baseline needs exactly two round trips (entry + value), StRoM needs one
round trip (the traversal kernel does both PCIe accesses remotely), and
the TCP RPC needs one round trip but pays per-byte message-passing cost
that grows quickly beyond 256 B values.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..apps.kvstore import KvClient, KvServer
from ..core.rpc import RpcOpcode
from ..host import build_fabric
from ..host.tcp_rpc import TcpRpcChannel
from ..sim import MS, LatencySample, Simulator
from .common import ExperimentResult, run_proc

VALUE_SIZES = [64, 128, 256, 512, 1024, 2048, 4096]


def hash_table_experiment(nic_config: NicConfig = NIC_10G,
                          host_config: HostConfig = HOST_DEFAULT,
                          value_sizes: Optional[List[int]] = None,
                          iterations: int = 30,
                          seed: int = 8) -> ExperimentResult:
    value_sizes = value_sizes or VALUE_SIZES
    result = ExperimentResult(
        experiment_id="fig8",
        title="Remote hash-table GET latency vs value size (median us)",
        columns=["value_B", "rdma_read_us", "strom_us", "tcp_rpc_us",
                 "read_rtts", "strom_rtts"],
        notes="READ = 2 round trips (entry + value); StRoM = 1 round trip "
              "saving ~one network RTT per lookup")
    for value_bytes in value_sizes:
        row = _measure_for_value_size(nic_config, host_config, value_bytes,
                                      iterations, seed)
        result.add_row(value_B=value_bytes, **row)
    return result


def _measure_for_value_size(nic_config, host_config, value_bytes,
                            iterations, seed):
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    server_store = KvServer(fabric.server, num_slots=1024,
                            value_capacity=max(4 << 20,
                                               value_bytes * 64))
    server_store.deploy_traversal_kernel()
    tcp = TcpRpcChannel(env, host_config, seed=seed)
    client_store = KvClient(fabric, server_store, tcp=tcp)

    # Insert collision-free keys (best case: one entry probe), as the
    # paper assumes "the hash table entry always matches the given key".
    keys = []
    used_slots = set()
    key = 1
    while len(keys) < 16:
        key += 1
        slot = server_store.slot_vaddr(key)
        if slot in used_slots or not server_store.slot_is_empty(key):
            continue
        used_slots.add(slot)
        server_store.insert(key, bytes([len(keys) + 1]) * value_bytes)
        keys.append(key)

    read_sample = LatencySample("read")
    strom_sample = LatencySample("strom")
    tcp_sample = LatencySample("tcp")
    round_trips = {"read": 0, "strom": 0}

    def driver():
        for i in range(iterations):
            key = keys[i % len(keys)]
            result = yield from client_store.get_via_reads(key)
            assert result.value is not None
            read_sample.record(result.latency_ps)
            round_trips["read"] = result.network_round_trips

            result = yield from client_store.get_via_strom(key, value_bytes)
            assert result.value is not None
            strom_sample.record(result.latency_ps)
            round_trips["strom"] = result.network_round_trips

            result = yield from client_store.get_via_tcp(key)
            assert result.value is not None
            tcp_sample.record(result.latency_ps)

    run_proc(env, driver(), limit=iterations * 100 * MS)
    return {
        "rdma_read_us": read_sample.summary().median_us,
        "strom_us": strom_sample.summary().median_us,
        "tcp_rpc_us": tcp_sample.summary().median_us,
        "read_rtts": round_trips["read"],
        "strom_rtts": round_trips["strom"],
    }
