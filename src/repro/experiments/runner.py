"""Run every reproduced table and figure and print the results.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig7 fig8  # a selection
    python -m repro.experiments.runner --fast     # reduced iteration counts

    # capture observability artifacts for any run:
    python -m repro cluster-scaling --fast \
        --trace-out run.json --metrics-out metrics.json
    python -m repro report metrics.json           # pretty-print a snapshot

``--trace-out`` writes a Chrome trace-event file (load it at
https://ui.perfetto.dev); ``--metrics-out`` writes the merged metrics
snapshot of every simulation the run built (see :mod:`repro.obs`).

The EXPERIMENTS.md paper-vs-measured records were produced by this
runner.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List

from ..obs import observe

from ..config import NIC_10G, NIC_100G
from ..sim import MS
from .ablations import (
    datapath_width_ablation,
    doorbell_batching_ablation,
    interconnect_latency_ablation,
    outstanding_reads_ablation,
)
from .cluster_scaling import cluster_scaling_experiment
from .common import ExperimentResult
from .fault_sweep import fault_sweep_experiment
from .fig05_microbench import (
    latency_experiment,
    message_rate_experiment,
    throughput_experiment,
)
from .fig07_linked_list import linked_list_experiment
from .fig08_hash_table import hash_table_experiment
from .fig09_consistency import (
    consistency_latency_experiment,
    failure_rate_experiment,
)
from .fig11_shuffle import shuffle_experiment
from .incast_sweep import incast_sweep_experiment
from .kernel_fault_sweep import kernel_fault_sweep_experiment
from .fig13_hll import hll_cpu_experiment, hll_kernel_experiment
from .table3_resources import table3_experiment, virtex7_experiment
from .validation import flow_vs_detailed_experiment, stack_budget_experiment


def _registry(fast: bool,
              seed: int = 7) -> Dict[str, Callable[[], ExperimentResult]]:
    # Flow-model sweep points (repro.experiments.flowmodel) are memoized
    # per (config, payload) with lru_cache, so operating points shared
    # between figure families are computed once per run.
    lat_iters = 15 if fast else 50
    sweep_iters = 8 if fast else 30
    return {
        "fig5a": lambda: latency_experiment(NIC_10G, iterations=lat_iters),
        "fig5b": lambda: throughput_experiment(NIC_10G),
        "fig5c": lambda: message_rate_experiment(NIC_10G),
        "fig7": lambda: linked_list_experiment(iterations=sweep_iters),
        "fig8": lambda: hash_table_experiment(iterations=sweep_iters),
        "fig9": lambda: consistency_latency_experiment(
            iterations=sweep_iters),
        "fig10": lambda: failure_rate_experiment(
            iterations=max(sweep_iters, 20)),
        "fig11": lambda: shuffle_experiment(),
        "fig12a": lambda: latency_experiment(
            NIC_100G, iterations=lat_iters, experiment_id="fig12a"),
        "fig12b": lambda: throughput_experiment(
            NIC_100G, experiment_id="fig12b"),
        "fig12c": lambda: message_rate_experiment(
            NIC_100G, payloads=[64, 256, 1024, 2048, 4096],
            experiment_id="fig12c"),
        "fig13a": lambda: hll_cpu_experiment(),
        "fig13b": lambda: hll_kernel_experiment(),
        "table3": table3_experiment,
        "sec6.1": virtex7_experiment,
        "ablation-interconnect": lambda: interconnect_latency_ablation(
            iterations=max(sweep_iters, 8)),
        "ablation-datapath": datapath_width_ablation,
        "ablation-outstanding-reads": outstanding_reads_ablation,
        "ablation-batching": doorbell_batching_ablation,
        "validation-flow": flow_vs_detailed_experiment,
        "validation-stack-budget": stack_budget_experiment,
        "cluster-scaling": lambda: cluster_scaling_experiment(
            shard_counts=(1, 2) if fast else (1, 2, 3, 4),
            offered_per_shard=60_000.0 if fast else 120_000.0,
            window_ps=MS if fast else 2 * MS),
        "fault-sweep": lambda: fault_sweep_experiment(
            loss_levels=(0.0, 0.03) if fast else (0.0, 0.01, 0.03, 0.10),
            crash_modes=(True,) if fast else (False, True),
            seed=seed,
            offered_per_shard=40_000.0 if fast else 60_000.0,
            window_ps=MS if fast else 2 * MS),
        "kernel-fault-sweep": lambda: kernel_fault_sweep_experiment(
            fault_levels=(0, 6) if fast else (0, 2, 4, 8),
            seed=seed,
            offered_per_shard=30_000.0 if fast else 40_000.0,
            window_ps=MS if fast else 2 * MS),
        "incast-sweep": lambda: incast_sweep_experiment(
            sender_counts=(2, 8) if fast else (2, 4, 8, 16),
            seed=seed,
            messages=40 if fast else 100),
    }


def run_experiments(names: List[str] = None, fast: bool = False,
                    stream=None, seed: int = 7) -> List[ExperimentResult]:
    stream = stream or sys.stdout
    registry = _registry(fast, seed=seed)
    selected = names or list(registry)
    unknown = [n for n in selected if n not in registry]
    if unknown:
        raise SystemExit(f"unknown experiments: {unknown}; "
                         f"available: {sorted(registry)}")
    results = []
    for name in selected:
        started = time.time()
        result = registry[name]()
        elapsed = time.time() - started
        results.append(result)
        print(result.format_table(), file=stream)
        print(f"({elapsed:.1f}s wall)\n", file=stream)
    return results


def write_markdown_report(results: List[ExperimentResult],
                          path: str) -> None:
    """Write all result tables as one markdown document."""
    with open(path, "w") as handle:
        handle.write("# StRoM reproduction — measured results\n\n")
        for result in results:
            handle.write(result.format_markdown())
            handle.write("\n\n")


def print_metrics_report(path: str, stream=None) -> None:
    """Pretty-print a ``--metrics-out`` snapshot grouped by component."""
    stream = stream or sys.stdout
    with open(path) as handle:
        snapshot = json.load(handle)
    print(f"metrics snapshot: {path} ({len(snapshot)} series)",
          file=stream)
    previous_root = None
    for name in sorted(snapshot):
        root = name.split(".", 1)[0]
        if root != previous_root:
            print(f"\n[{root}]", file=stream)
            previous_root = root
        value = snapshot[name]
        formatted = f"{value:.6g}" if isinstance(value, float) else value
        print(f"  {name:<48} {formatted}", file=stream)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "conformance":
        # The conformance harness owns its own flags (--runs,
        # --first-run, ...) which the experiment parser doesn't know.
        from ..check.harness import conformance_main
        return conformance_main(argv[1:])
    parser = argparse.ArgumentParser(
        description="Reproduce the StRoM evaluation tables and figures")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (default: all), or "
                             "'report FILE' to pretty-print a metrics "
                             "snapshot")
    parser.add_argument("--fast", action="store_true",
                        help="reduced iteration counts")
    parser.add_argument("--markdown", metavar="FILE",
                        help="also write the tables to FILE as markdown")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome trace-event JSON of the run "
                             "(open with https://ui.perfetto.dev)")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write the run's merged metrics snapshot "
                             "as JSON")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed for seeded experiments "
                             "(fault-sweep); same seed, same JSON")
    parser.add_argument("--json", metavar="FILE", dest="json_out",
                        help="write result rows as deterministic JSON "
                             "(sorted keys, no timing noise)")
    args = parser.parse_args(argv)

    if args.experiments and args.experiments[0] == "report":
        if len(args.experiments) != 2:
            parser.error("report takes exactly one metrics JSON file")
        try:
            print_metrics_report(args.experiments[1])
        except BrokenPipeError:
            # `... report m.json | head` closes stdout early; not an error.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0

    observing = args.trace_out or args.metrics_out
    if observing:
        with observe(tracing=bool(args.trace_out)) as session:
            results = run_experiments(args.experiments or None,
                                      fast=args.fast, seed=args.seed)
        if args.trace_out:
            session.write_trace(args.trace_out)
            print(f"chrome trace written to {args.trace_out}")
        if args.metrics_out:
            session.write_metrics(args.metrics_out)
            print(f"metrics snapshot written to {args.metrics_out}")
    else:
        results = run_experiments(args.experiments or None, fast=args.fast,
                                  seed=args.seed)
    if args.markdown:
        write_markdown_report(results, args.markdown)
        print(f"markdown report written to {args.markdown}")
    if args.json_out:
        payload = {r.experiment_id: r.rows for r in results}
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result rows written to {args.json_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
