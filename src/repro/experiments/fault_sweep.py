"""Fault sweep: goodput/p99 degradation under bursty loss and crashes.

Not a paper figure — the paper's reliability evaluation stops at uniform
loss on a clean cable (Section 6.1) — but the question a production
deployment asks of the chaos subsystem (:mod:`repro.faults`): how do the
service's goodput and tail latency degrade as Gilbert-Elliott burst loss
rises, and does a whole-node shard crash degrade throughput *gracefully*
(replica failover) instead of hanging the workload?

Methodology: each operating point builds a 2-shard star (2 servers + 2
clients) with primary/backup replication, offers a fixed open-loop load,
and injects (a) bursty loss on every link at the swept mean rate and
(b) optionally one shard crash at 30 % of the window, restarting at
70 %.  Clients run under a :class:`~repro.cluster.sharded_kv.RetryPolicy`
so crashed shards cost timeouts + failovers, never hangs.  Every run is
seeded; with the same ``--seed`` the sweep's JSON output is
byte-identical across runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cluster import (
    RetryPolicy,
    ShardedKvClient,
    ShardedKvService,
    WorkloadConfig,
    build_star,
    populate,
    run_open_loop,
)
from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..faults import FaultSchedule
from ..net.link import GilbertElliott, LinkFaults
from ..obs.runtime import registry_for
from ..sim import MS, Simulator
from .common import ExperimentResult

#: Swept long-run loss rates (mean of the Gilbert-Elliott channel).
DEFAULT_LOSS_LEVELS = (0.0, 0.01, 0.03, 0.10)


def run_fault_point(mean_loss: float,
                    crash: bool,
                    seed: int = 7,
                    num_shards: int = 2,
                    offered_per_shard: float = 60_000.0,
                    window_ps: int = 2 * MS,
                    get_path: str = "strom",
                    num_keys: int = 128,
                    value_bytes: int = 128,
                    read_fraction: float = 0.95,
                    burst_frames: float = 8.0,
                    nic_config: NicConfig = NIC_10G,
                    host_config: HostConfig = HOST_DEFAULT,
                    retry_policy: Optional[RetryPolicy] = None
                    ) -> Dict[str, object]:
    """One operating point; returns a flat row of goodput + fault
    counters (plain numbers only, so rows serialize to JSON)."""
    env = Simulator()
    faults = None
    if mean_loss > 0.0:
        faults = LinkFaults(
            burst=GilbertElliott.from_mean_loss(mean_loss,
                                               burst_frames=burst_frames),
            seed=seed)
    cluster = build_star(env, num_hosts=2 * num_shards,
                         nic_config=nic_config, host_config=host_config,
                         faults=faults, seed=seed)
    servers = cluster.hosts[:num_shards]
    client_hosts = cluster.hosts[num_shards:]
    service = ShardedKvService(cluster, servers,
                               replicas=min(2, num_shards))
    populate(service, num_keys=num_keys, value_bytes=value_bytes)
    policy = retry_policy or RetryPolicy()
    clients = [ShardedKvClient(cluster, service, node, seed=seed + i,
                               retry_policy=policy)
               for i, node in enumerate(client_hosts)]

    schedule = FaultSchedule(env, seed=seed)
    if crash:
        schedule.crash_shard(int(0.3 * window_ps), service, 0,
                             restart_after=int(0.4 * window_ps))
    schedule.start()

    config = WorkloadConfig(
        offered_ops_per_s=offered_per_shard * num_shards,
        window_ps=window_ps, num_keys=num_keys,
        read_fraction=read_fraction, value_bytes=value_bytes,
        get_path=get_path, seed=seed)
    report = run_open_loop(env, clients, config)
    if report.completed != report.issued:
        raise RuntimeError(
            f"fault point did not drain: {report.completed} of "
            f"{report.issued} completed (hang)")

    nics = [host.nic for host in cluster.hosts]
    pct = report.latency_percentiles_us()
    flat = registry_for(env).snapshot().as_flat_dict()
    burst_drops = sum(v for k, v in flat.items()
                      if k.endswith(".burst_drops"))
    kv_counter = lambda suffix: sum(
        v for k, v in flat.items() if k.endswith(f".kv.{suffix}"))
    return {
        "mean_loss": mean_loss,
        "crash": int(crash),
        "offered_kops": config.offered_ops_per_s / 1e3,
        "goodput_kops": report.achieved_ops_per_s / 1e3,
        "p50_us": pct[0.50],
        "p99_us": pct[0.99],
        "issued": report.issued,
        "failed": report.failed,
        "burst_drops": int(burst_drops),
        "retransmits": sum(int(nic.retransmitted) for nic in nics),
        "recoveries": sum(int(nic.timer.recoveries) for nic in nics),
        "qp_errors": sum(int(nic.qp_errors) for nic in nics),
        "timeouts": int(kv_counter("timeouts")),
        "failovers": int(kv_counter("failovers")),
        "faults_injected": int(schedule.injected),
    }


def fault_sweep_experiment(
        loss_levels: Sequence[float] = DEFAULT_LOSS_LEVELS,
        crash_modes: Sequence[bool] = (False, True),
        seed: int = 7,
        offered_per_shard: float = 60_000.0,
        window_ps: int = 2 * MS,
        experiment_id: str = "fault-sweep") -> ExperimentResult:
    """Goodput/p99 degradation curves vs burst loss x crash injection."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="Goodput under bursty loss, link faults, and shard crashes",
        columns=["mean_loss", "crash", "offered_kops", "goodput_kops",
                 "p50_us", "p99_us", "failed", "retransmits",
                 "recoveries", "qp_errors", "timeouts", "failovers",
                 "faults_injected"],
        notes=(f"2 shards + primary/backup replication, seed {seed}; "
               "Gilbert-Elliott loss on every link (mean burst 8 "
               "frames); crash points down shard 0 for 40% of the "
               "window; clients retry with backoff and fail over"))
    for crash in crash_modes:
        for loss in loss_levels:
            result.add_row(**run_fault_point(
                loss, crash, seed=seed,
                offered_per_shard=offered_per_shard,
                window_ps=window_ps))
    return result
