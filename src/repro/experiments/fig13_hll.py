"""Figure 13: HyperLogLog cardinality estimation at 100 G.

(a) software HLL on the CPU while StRoM ingests the data into memory:
    throughput for 1/2/4/8 threads (published: 4.64 / 9.28 / 18.40 /
    24.40 Gbit/s);
(b) HLL as a StRoM kernel: RDMA WRITE throughput with and without the
    kernel on the stream — no overhead, line rate for large payloads.

Both parts also run the *functional* sketch over real data so the
reported estimates carry real HLL error, not a constant.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import HOST_DEFAULT, NIC_100G, HostConfig, NicConfig
from ..host.baselines import CpuHllIngest
from ..host.cpu import CpuModel
from ..algos.hyperloglog import exact_cardinality
from .common import ExperimentResult
from .flowmodel import hll_kernel_throughput, write_throughput

THREAD_COUNTS = [1, 2, 4, 8]
PAYLOADS_13B = [64, 128, 512, 1024, 4096, 16384]
#: Observed aggregate ingest while the CPU runs HLL (Figure 13a setup).
NIC_INGEST_GBPS = 25.0


def hll_cpu_experiment(host_config: HostConfig = HOST_DEFAULT,
                       threads: Optional[List[int]] = None,
                       sample_tuples: int = 200_000,
                       seed: int = 13) -> ExperimentResult:
    """Figure 13a."""
    threads = threads or THREAD_COUNTS
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2 ** 62, size=sample_tuples, dtype=np.uint64)
    truth = exact_cardinality(values.tolist())
    cpu = CpuModel(host_config)
    result = ExperimentResult(
        experiment_id="fig13a",
        title="CPU HLL throughput receiving data through StRoM (Gbit/s)",
        columns=["threads", "throughput_gbps", "estimate_error_pct"],
        notes="paper: 4.64 / 9.28 / 18.40 / 24.40 Gbit/s for 1/2/4/8 "
              "threads (memory-bandwidth bound)")
    for n in threads:
        ingest = CpuHllIngest(cpu, threads=n)
        estimate, _cpu_time = ingest.process(values, NIC_INGEST_GBPS)
        result.add_row(
            threads=n,
            throughput_gbps=ingest.throughput_gbps(NIC_INGEST_GBPS),
            estimate_error_pct=100.0 * abs(estimate - truth) / truth)
    return result


def hll_kernel_experiment(nic_config: NicConfig = NIC_100G,
                          host_config: HostConfig = HOST_DEFAULT,
                          payloads: Optional[List[int]] = None
                          ) -> ExperimentResult:
    """Figure 13b."""
    payloads = payloads or PAYLOADS_13B
    result = ExperimentResult(
        experiment_id="fig13b",
        title=f"StRoM Write vs Write+HLL throughput on {nic_config.name} "
              "(Gbit/s)",
        columns=["payload_B", "write_gbps", "write_hll_gbps",
                 "overhead_pct"],
        notes="the HLL kernel runs at II=1 (one word/cycle >= line rate): "
              "zero throughput overhead")
    for payload in payloads:
        write = write_throughput(nic_config, host_config, payload)
        with_hll = hll_kernel_throughput(nic_config, host_config, payload)
        overhead = 0.0
        if write.goodput_gbps > 0:
            overhead = 100.0 * (write.goodput_gbps - with_hll.goodput_gbps) \
                / write.goodput_gbps
        result.add_row(payload_B=payload,
                       write_gbps=write.goodput_gbps,
                       write_hll_gbps=with_hll.goodput_gbps,
                       overhead_pct=overhead)
    return result
