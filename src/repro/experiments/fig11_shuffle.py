"""Figure 11: data shuffling — execution time for partitioning and
transmitting 8 B tuples.

Three approaches: the Barthels et al. software baseline ("SW + RDMA
WRITE": partition pass on the sending CPU, then transmit), StRoM (the
shuffle kernel partitions on the receiving NIC as a bump in the wire),
and plain "RDMA WRITE" (no partitioning — the lower bound).

The published input sizes (128 MB - 1 GB) use the flow model; a
scaled-down detailed run (full kernel, real tuples) validates that the
flow model's StRoM-vs-WRITE gap is faithful.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..core.rpc import RpcOpcode
from ..host import build_fabric
from ..host.baselines import SoftwarePartitioner
from ..host.cpu import CpuModel
from ..kernels.shuffle import ShuffleKernel, ShuffleParams, pack_descriptor
from ..sim import MS, Simulator, timebase
from .common import ExperimentResult, run_proc
from .flowmodel import shuffle_times

INPUT_MIB = [128, 256, 512, 1024]


def shuffle_experiment(nic_config: NicConfig = NIC_10G,
                       host_config: HostConfig = HOST_DEFAULT,
                       input_mib: Optional[List[int]] = None
                       ) -> ExperimentResult:
    """The published sweep (flow model)."""
    input_mib = input_mib or INPUT_MIB
    result = ExperimentResult(
        experiment_id="fig11",
        title="Data shuffling execution time (s), 8 B tuples",
        columns=["input_MiB", "sw_write_s", "strom_s", "write_s",
                 "strom_vs_write_pct"],
        notes="StRoM partitions as a bump in the wire: within a few % of "
              "a plain WRITE; the SW baseline pays a serial partition "
              "pass")
    for mib in input_mib:
        times = shuffle_times(nic_config, host_config, mib * 1024 * 1024)
        result.add_row(
            input_MiB=mib,
            sw_write_s=times.sw_write_s,
            strom_s=times.strom_s,
            write_s=times.write_s,
            strom_vs_write_pct=100.0 * (times.strom_s - times.write_s)
            / times.write_s)
    return result


def shuffle_detailed_run(nic_config: NicConfig = NIC_10G,
                         host_config: HostConfig = HOST_DEFAULT,
                         num_tuples: int = 16384,
                         partition_bits: int = 3,
                         seed: int = 11):
    """Scaled-down detailed validation: runs the real shuffle kernel and
    both baselines over the packet-level simulation.

    Returns a dict with the three execution times (seconds) plus
    functional evidence (tuples partitioned per approach).
    """
    total_bytes = num_tuples * 8
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2 ** 63, size=num_tuples, dtype=np.uint64)
    num_partitions = 1 << partition_bits

    # ---------------- plain RDMA WRITE --------------------------------
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    src = fabric.client.alloc(total_bytes, "src")
    dst = fabric.server.alloc(total_bytes, "dst")
    fabric.client.space.write(src.vaddr, values.tobytes())

    def plain_write():
        start = env.now
        yield from fabric.client.write_sync(fabric.client_qpn, src.vaddr,
                                            dst.vaddr, total_bytes)
        return env.now - start

    write_ps = run_proc(env, plain_write(), limit=10_000 * MS)

    # ---------------- StRoM shuffle kernel ----------------------------
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    kernel = ShuffleKernel(env, fabric.server.nic.config)
    fabric.server.nic.deploy_kernel(RpcOpcode.SHUFFLE, kernel,
                                    sequential_dma=False)
    cap = (total_bytes // num_partitions) * 4 + 1024
    regions = [fabric.server.alloc(cap, f"part{i}")
               for i in range(num_partitions)]
    table = fabric.server.alloc(4096, "descriptors")
    fabric.server.space.write(table.vaddr, b"".join(
        pack_descriptor(r.vaddr, cap) for r in regions))
    src = fabric.client.alloc(total_bytes, "src")
    fabric.client.space.write(src.vaddr, values.tobytes())
    response = fabric.client.alloc(4096, "resp")

    def strom_shuffle():
        start = env.now
        params = ShuffleParams(response_vaddr=response.vaddr,
                               descriptor_table_vaddr=table.vaddr,
                               partition_bits=partition_bits,
                               total_bytes=total_bytes)
        yield from fabric.client.post_rpc(fabric.client_qpn,
                                          RpcOpcode.SHUFFLE, params.pack())
        yield from fabric.client.post_rpc_write(
            fabric.client_qpn, RpcOpcode.SHUFFLE, src.vaddr, total_bytes)
        yield from fabric.client.wait_for_data(response.vaddr, 16)
        return env.now - start

    strom_ps = run_proc(env, strom_shuffle(), limit=10_000 * MS)
    strom_tuples = kernel.tuples_partitioned

    # ---------------- SW partition + WRITE ----------------------------
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    partitioner = SoftwarePartitioner(CpuModel(host_config), partition_bits)
    src = fabric.client.alloc(total_bytes, "src")
    dst = fabric.server.alloc(total_bytes + num_partitions * 64, "dst")

    def sw_shuffle():
        start = env.now
        plan = partitioner.partition(values)
        yield fabric.client.cpu_delay(plan.cpu_time_ps)
        offset = 0
        last = None
        for part in plan.partitions:
            if part.size == 0:
                continue
            blob = part.tobytes()
            fabric.client.space.write(src.vaddr + offset, blob)
            last = yield from fabric.client.write(
                fabric.client_qpn, src.vaddr + offset, dst.vaddr + offset,
                len(blob))
            offset += len(blob)
        if last is not None:
            yield last
        return env.now - start

    sw_ps = run_proc(env, sw_shuffle(), limit=10_000 * MS)

    return {
        "write_s": timebase.to_seconds(write_ps),
        "strom_s": timebase.to_seconds(strom_ps),
        "sw_write_s": timebase.to_seconds(sw_ps),
        "strom_tuples": strom_tuples,
        "num_tuples": num_tuples,
    }
