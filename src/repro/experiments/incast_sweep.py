"""Incast sweep: N-to-1 RDMA WRITE fan-in with and without DCQCN.

Not a paper figure — the paper's testbed is switchless by design
(Section 6.1) — but the scale-out question the congestion-control plane
(:mod:`repro.cc`) exists to answer: when N senders simultaneously blast
RDMA WRITEs at one receiver through a shared switch port, does the
fabric collapse (tail-drop -> go-back-N retransmission storms -> QP
retry exhaustion), and how much of the bottleneck line rate does ECN +
DCQCN rate control recover?

Methodology: each operating point builds an (N+1)-host star, connects
one queue pair from every sender to the single receiver, and runs a
windowed stream of fixed-size WRITEs per sender (enough outstanding
messages to overflow the 64-frame egress queue many times over at
N:1).  Goodput is completed payload bytes over the makespan; p50/p99
are per-message completion latencies; drop/mark/CNP/retransmit counts
come from the metrics registry.  Every run is seeded; with the same
``--seed`` the sweep's JSON output is byte-identical across runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..cc import CcConfig
from ..cluster import build_star
from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..obs.runtime import registry_for
from ..sim import MS, Simulator
from ..sim.stats import LatencySample
from .common import ExperimentResult

#: Swept fan-in degrees (senders per receiver).
DEFAULT_SENDER_COUNTS = (2, 4, 8)


def _metric_sum(flat: Dict[str, object], suffix: str) -> int:
    return int(sum(v for k, v in flat.items()
                   if k.endswith(suffix) and isinstance(v, (int, float))))


def run_incast_point(senders: int,
                     cc: bool,
                     seed: int = 7,
                     messages: int = 100,
                     message_bytes: int = 16384,
                     window: int = 4,
                     deadline_ps: int = 1000 * MS,
                     cc_config: Optional[CcConfig] = None,
                     nic_config: NicConfig = NIC_10G,
                     host_config: HostConfig = HOST_DEFAULT
                     ) -> Dict[str, object]:
    """One N:1 operating point; returns a flat JSON-able row.

    Each sender keeps ``window`` WRITEs of ``message_bytes`` in flight
    until it has issued ``messages`` of them.  With congestion control
    off a message that exhausts its QP's retry budget completes with an
    error and is counted in ``errors`` (its bytes never count toward
    goodput) — exactly the silent failure mode the plane removes.
    """
    env = Simulator()
    cluster = build_star(env, num_hosts=senders + 1,
                         nic_config=nic_config, host_config=host_config,
                         seed=seed)
    receiver = cluster.hosts[0]
    sender_hosts = cluster.hosts[1:]
    qpns = {host.name: cluster.connect(host, receiver)[0]
            for host in sender_hosts}
    if cc:
        cluster.enable_congestion_control(cc_config or CcConfig())

    tally = {"completed": 0, "errors": 0, "finish_ps": 0}
    latency = LatencySample("incast")

    def sender_proc(host, qpn):
        local = host.alloc(message_bytes).vaddr
        remote = receiver.alloc(message_bytes).vaddr
        outstanding = []

        def reap(posted_ps, completion):
            if isinstance(completion.value, Exception):
                tally["errors"] += 1
                return
            latency.record(env.now - posted_ps)
            tally["completed"] += 1
            tally["finish_ps"] = max(tally["finish_ps"], env.now)

        for _ in range(messages):
            completion = yield from host.write(qpn, local, remote,
                                               message_bytes)
            outstanding.append((env.now, completion))
            if len(outstanding) >= window:
                posted_ps, head = outstanding.pop(0)
                yield head
                reap(posted_ps, head)
        for posted_ps, head in outstanding:
            yield head
            reap(posted_ps, head)

    for host in sender_hosts:
        env.process(sender_proc(host, qpns[host.name]))
    env.run(until=deadline_ps)

    flat = registry_for(env).snapshot().as_flat_dict()
    makespan_ps = tally["finish_ps"] or env.now
    goodput_bps = (tally["completed"] * message_bytes * 8
                   / (makespan_ps / 1e12))
    pct = (latency.percentiles([0.50, 0.99]) if len(latency)
           else {0.50: 0.0, 0.99: 0.0})
    return {
        "senders": senders,
        "cc": int(cc),
        "completed": tally["completed"],
        "errors": tally["errors"],
        "goodput_gbps": round(goodput_bps / 1e9, 4),
        "p50_us": round(pct[0.50], 3),
        "p99_us": round(pct[0.99], 3),
        "makespan_ms": round(makespan_ps / 1e9, 4),
        "tail_drops": _metric_sum(flat, ".tail_drops"),
        "ce_marks": _metric_sum(flat, ".ce_marks"),
        "cnps": _metric_sum(flat, ".cc.cnps_rx"),
        "rate_cuts": _metric_sum(flat, ".rate_cuts"),
        "retransmits": sum(int(host.nic.retransmitted)
                           for host in cluster.hosts),
        "qp_errors": sum(int(host.nic.qp_errors)
                         for host in cluster.hosts),
    }


def incast_sweep_experiment(
        sender_counts: Sequence[int] = DEFAULT_SENDER_COUNTS,
        cc_modes: Sequence[bool] = (False, True),
        seed: int = 7,
        messages: int = 100,
        message_bytes: int = 16384,
        window: int = 4,
        experiment_id: str = "incast-sweep") -> ExperimentResult:
    """Goodput/p99/drop curves vs fan-in degree, CC off vs on."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="N:1 incast goodput with and without ECN/DCQCN",
        columns=["senders", "cc", "completed", "errors", "goodput_gbps",
                 "p50_us", "p99_us", "makespan_ms", "tail_drops",
                 "ce_marks", "cnps", "retransmits", "qp_errors"],
        notes=(f"star topology, one 10G bottleneck port, seed {seed}; "
               f"{messages} x {message_bytes} B WRITEs per sender, "
               f"window {window}; cc=1 enables switch ECN marking + "
               "per-QP DCQCN rate control + pacing"))
    for cc in cc_modes:
        for senders in sender_counts:
            result.add_row(**run_incast_point(
                senders, cc, seed=seed, messages=messages,
                message_bytes=message_bytes, window=window))
    return result
