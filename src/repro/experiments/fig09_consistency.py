"""Figures 9 and 10: consistency-checked remote reads.

Figure 9 varies the object size: plain READ (no check), READ+SW (CRC64
verified on the requester CPU), and StRoM (CRC64 verified by the
consistency kernel on the remote NIC).  Figure 10 varies the failure
rate: on a failed check READ+SW pays another *network* round trip while
StRoM pays only a local PCIe re-read.
"""

from __future__ import annotations

from typing import List, Optional

from ..algos.crc import ChecksummedObject
from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..core.rpc import RpcOpcode
from ..host import build_fabric
from ..host.baselines import read_with_sw_check
from ..host.cpu import CpuModel
from ..kernels.consistency import (
    ConsistencyKernel,
    ConsistencyParams,
    seeded_failure_injector,
)
from ..sim import MS, LatencySample, Simulator
from .common import ExperimentResult, run_proc

OBJECT_SIZES = [64, 128, 256, 512, 1024, 2048, 4096]
FAILURE_RATES = [0.0, 0.005, 0.05, 0.5]
FAILURE_SIZES = [64, 512, 4096]


def _setup(nic_config, host_config, object_bytes, failure_rate, seed):
    env = Simulator()
    fabric = build_fabric(env, nic_config=nic_config,
                          host_config=host_config, seed=seed)
    kernel_injector = (seeded_failure_injector(failure_rate, seed + 1)
                       if failure_rate else None)
    kernel = ConsistencyKernel(env, fabric.server.nic.config,
                               failure_injector=kernel_injector)
    fabric.server.nic.deploy_kernel(RpcOpcode.CONSISTENCY, kernel)

    obj = fabric.server.alloc(max(object_bytes, 64) * 2, "object")
    payload = bytes(i % 251 for i in range(
        object_bytes - ChecksummedObject.CHECKSUM_BYTES))
    fabric.server.space.write(obj.vaddr, ChecksummedObject.seal(payload))
    local = fabric.client.alloc(max(object_bytes, 64) * 2, "local")
    return env, fabric, obj, local


def consistency_latency_experiment(nic_config: NicConfig = NIC_10G,
                                   host_config: HostConfig = HOST_DEFAULT,
                                   object_sizes: Optional[List[int]] = None,
                                   iterations: int = 30,
                                   seed: int = 9) -> ExperimentResult:
    """Figure 9: latency vs object size, no failures."""
    object_sizes = object_sizes or OBJECT_SIZES
    result = ExperimentResult(
        experiment_id="fig9",
        title="Consistent remote read latency vs object size (median us)",
        columns=["object_B", "read_us", "read_sw_us", "strom_us",
                 "sw_overhead_pct", "strom_overhead_pct"],
        notes="READ+SW pays CPU CRC64 (up to ~40% at 4KB); the StRoM "
              "kernel adds ~1 us (<8%)")
    for object_bytes in object_sizes:
        row = _measure_latency(nic_config, host_config, object_bytes,
                               failure_rate=0.0, iterations=iterations,
                               seed=seed)
        result.add_row(object_B=object_bytes, **row)
    return result


def failure_rate_experiment(nic_config: NicConfig = NIC_10G,
                            host_config: HostConfig = HOST_DEFAULT,
                            failure_rates: Optional[List[float]] = None,
                            object_sizes: Optional[List[int]] = None,
                            iterations: int = 40,
                            seed: int = 10) -> ExperimentResult:
    """Figure 10: average latency vs failure rate and object size."""
    failure_rates = failure_rates if failure_rates is not None \
        else FAILURE_RATES
    object_sizes = object_sizes or FAILURE_SIZES
    result = ExperimentResult(
        experiment_id="fig10",
        title="Average read latency under checksum failures (us)",
        columns=["object_B", "failure_rate", "read_sw_us", "strom_us"],
        notes="retries cost a network RTT for READ+SW but only a PCIe "
              "re-read for StRoM (first retry always succeeds)")
    for object_bytes in object_sizes:
        for rate in failure_rates:
            row = _measure_latency(nic_config, host_config, object_bytes,
                                   failure_rate=rate,
                                   iterations=iterations, seed=seed,
                                   mean=True)
            result.add_row(object_B=object_bytes, failure_rate=rate,
                           read_sw_us=row["read_sw_us"],
                           strom_us=row["strom_us"])
    return result


def _measure_latency(nic_config, host_config, object_bytes, failure_rate,
                     iterations, seed, mean=False):
    env, fabric, obj, local = _setup(nic_config, host_config, object_bytes,
                                     failure_rate, seed)
    client = fabric.client
    cpu = CpuModel(host_config)
    sw_injector = (seeded_failure_injector(failure_rate, seed + 2)
                   if failure_rate else None)

    read_sample = LatencySample("read")
    read_sw_sample = LatencySample("read+sw")
    strom_sample = LatencySample("strom")

    def plain_read():
        start = env.now
        yield from client.read_sync(fabric.client_qpn, local.vaddr,
                                    obj.vaddr, object_bytes)
        read_sample.record(env.now - start)

    def read_sw():
        start = env.now
        data, _attempts = yield from read_with_sw_check(
            fabric, local.vaddr, obj.vaddr, object_bytes, cpu,
            failure_injector=sw_injector)
        assert ChecksummedObject.verify(data)
        read_sw_sample.record(env.now - start)

    def strom():
        start = env.now
        params = ConsistencyParams(response_vaddr=local.vaddr,
                                   object_vaddr=obj.vaddr,
                                   object_size=object_bytes)
        yield from client.post_rpc(fabric.client_qpn,
                                   RpcOpcode.CONSISTENCY, params.pack())
        yield from client.wait_for_data(local.vaddr, 8)
        strom_sample.record(env.now - start)

    def driver():
        for _ in range(iterations):
            yield from plain_read()
            yield from read_sw()
            yield from strom()

    run_proc(env, driver(), limit=iterations * 100 * MS)
    read = read_sample.summary()
    read_sw_summary = read_sw_sample.summary()
    strom_summary = strom_sample.summary()
    pick = (lambda s: s.mean_us) if mean else (lambda s: s.median_us)
    read_us = pick(read)
    return {
        "read_us": read_us,
        "read_sw_us": pick(read_sw_summary),
        "strom_us": pick(strom_summary),
        "sw_overhead_pct":
            100.0 * (pick(read_sw_summary) - read_us) / read_us,
        "strom_overhead_pct":
            100.0 * (pick(strom_summary) - read_us) / read_us,
    }
