"""Scale-out experiment: sharded KV throughput vs shard count.

Not a paper figure — the paper's testbed is two hosts on one cable — but
the natural scale-out question its Section 7 poses: does offloading GETs
to the NIC keep paying off once a *cluster* serves a skewed open-loop
workload through a switch?

Methodology: weak scaling.  Each operating point builds a star of
``S`` server hosts + ``S`` client hosts on one switch, shards the
keyspace by consistent hashing, and offers ``S x per-shard load`` with
Poisson arrivals and Zipf(0.99) keys.  Aggregate achieved throughput
should scale near-linearly with shards for the one-sided paths, while
p50/p99 stay flat; the TCP path saturates its single RPC core per
server first.
"""

from __future__ import annotations

from typing import List, Sequence

from ..cluster import (
    GET_PATHS,
    ShardedKvClient,
    ShardedKvService,
    WorkloadConfig,
    WorkloadReport,
    build_star,
    populate,
    run_open_loop,
)
from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from ..sim import MS, Simulator
from .common import ExperimentResult


def run_cluster_point(num_shards: int,
                      offered_per_shard: float,
                      window_ps: int,
                      get_path: str = "strom",
                      num_keys: int = 256,
                      value_bytes: int = 128,
                      read_fraction: float = 0.95,
                      nic_config: NicConfig = NIC_10G,
                      host_config: HostConfig = HOST_DEFAULT,
                      seed: int = 1) -> WorkloadReport:
    """One operating point: ``num_shards`` servers + as many clients on
    a single switch, offered load scaled with the shard count."""
    env = Simulator()
    cluster = build_star(env, num_hosts=2 * num_shards,
                         nic_config=nic_config, host_config=host_config,
                         seed=seed)
    servers = cluster.hosts[:num_shards]
    client_hosts = cluster.hosts[num_shards:]
    service = ShardedKvService(cluster, servers)
    populate(service, num_keys=num_keys, value_bytes=value_bytes)
    clients = [ShardedKvClient(cluster, service, node, seed=seed + i)
               for i, node in enumerate(client_hosts)]
    config = WorkloadConfig(
        offered_ops_per_s=offered_per_shard * num_shards,
        window_ps=window_ps, num_keys=num_keys,
        read_fraction=read_fraction, value_bytes=value_bytes,
        get_path=get_path, seed=seed)
    return run_open_loop_checked(env, clients, config)


def run_open_loop_checked(env: Simulator,
                          clients: List[ShardedKvClient],
                          config: WorkloadConfig) -> WorkloadReport:
    report = run_open_loop(env, clients, config)
    if report.completed != report.issued:
        raise RuntimeError(
            f"open-loop run did not drain: {report.completed} of "
            f"{report.issued} completed")
    return report


def cluster_scaling_experiment(
        shard_counts: Sequence[int] = (1, 2, 3, 4),
        paths: Sequence[str] = GET_PATHS,
        offered_per_shard: float = 120_000.0,
        window_ps: int = 2 * MS,
        experiment_id: str = "cluster-scaling",
        seed: int = 1) -> ExperimentResult:
    """Aggregate throughput and latency tails, 1..S shards, per path."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="Sharded KV scale-out on a switched fabric (weak scaling)",
        columns=["path", "shards", "offered_kops", "achieved_kops",
                 "p50_us", "p99_us"],
        notes=("open loop, Poisson arrivals, Zipf(0.99) keys, "
               f"{offered_per_shard / 1e3:.0f} kops/s offered per shard; "
               "TCP GETs serialize on one RPC core per server"))
    for path in paths:
        for shards in shard_counts:
            report = run_cluster_point(
                shards, offered_per_shard=offered_per_shard,
                window_ps=window_ps, get_path=path, seed=seed)
            pct = report.latency_percentiles_us()
            result.add_row(
                path=path, shards=shards,
                offered_kops=report.offered_ops_per_s / 1e3,
                achieved_kops=report.achieved_ops_per_s / 1e3,
                p50_us=pct[0.50], p99_us=pct[0.99])
    return result
