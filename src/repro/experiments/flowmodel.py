"""Analytic steady-state flow model.

Latency experiments run the detailed packet-level simulation; bulk
throughput experiments (Figures 5b/5c, 11, 12b/12c, 13) use this model,
derived from the *same* configuration constants.  Tests assert that the
two modes agree on overlapping operating points, so the flow model is a
fast projection of the simulator, not an independent guess.

Bottleneck structure (who can be the binding constraint):

- the wire: RoCE v2 framing overhead at the line rate (the dotted
  "ideal" lines of Figures 5 and 12);
- the host: one memory-mapped AVX2 store per message (Section 7.1);
- PCIe: payload must also cross the host bus (1:1 ratio at 100 G);
- outstanding READs: reads additionally obey credits / round-trip time.

Every sweep-point function here is a pure function of frozen-dataclass
configs and scalars, so results are memoized with ``lru_cache``: the
runner evaluates the same (config, payload) points across several figure
families (5b/12b, 11, 13b, validation) and pays for each point once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .. import config as cfg
from ..config import HostConfig, NicConfig
from ..sim import timebase


@dataclass(frozen=True)
class ThroughputPoint:
    """One operating point of the flow model."""

    payload_bytes: int
    goodput_gbps: float
    message_rate_mops: float
    ideal_goodput_gbps: float
    ideal_message_rate_mops: float
    bottleneck: str


@lru_cache(maxsize=None)
def host_message_rate(host: HostConfig, batch_size: int = 1) -> float:
    """Messages/second the host can issue.

    ``batch_size=1`` is one MMIO store per message (the paper's
    implementation); larger batches amortize the store over a command
    ring (Section 7.1: "Batching of application commands will eliminate
    this limitation").
    """
    if batch_size < 1:
        raise ValueError("batch size must be positive")
    # 2 % of stores hit the slow path (see MmioPath), matching the
    # detailed simulation's long-run average.
    store = host.mmio_command_cost * 1.06
    ring_entry = max(1, host.mmio_command_cost // 8)
    batch_cost = store + (batch_size - 1) * ring_entry
    return batch_size * timebase.SEC / batch_cost


@lru_cache(maxsize=None)
def pcie_goodput_bps(nic: NicConfig, payload_bytes: int,
                     sequential: bool = True) -> float:
    """Payload rate the PCIe link sustains for back-to-back DMA of
    ``payload_bytes`` (TLP overhead included)."""
    from ..nic.dma import PCIE_TLP_OVERHEAD_BYTES
    factor = 1.0 if sequential else nic.pcie_random_access_factor
    efficiency = payload_bytes / (payload_bytes + PCIE_TLP_OVERHEAD_BYTES)
    return nic.pcie_bandwidth_bps * efficiency * factor


@lru_cache(maxsize=None)
def write_throughput(nic: NicConfig, host: HostConfig,
                     payload_bytes: int,
                     batch_size: int = 1) -> ThroughputPoint:
    """Steady-state RDMA WRITE goodput for messages of ``payload_bytes``."""
    ideal_rate = cfg.ideal_message_rate(payload_bytes, nic.line_rate_bps)
    host_rate = host_message_rate(host, batch_size)
    pcie_rate = pcie_goodput_bps(nic, payload_bytes) / (payload_bytes * 8)
    rate = min(ideal_rate, host_rate, pcie_rate)
    if rate == ideal_rate:
        bottleneck = "wire"
    elif rate == host_rate:
        bottleneck = "host-mmio"
    else:
        bottleneck = "pcie"
    return ThroughputPoint(
        payload_bytes=payload_bytes,
        goodput_gbps=rate * payload_bytes * 8 / 1e9,
        message_rate_mops=rate / 1e6,
        ideal_goodput_gbps=ideal_rate * payload_bytes * 8 / 1e9,
        ideal_message_rate_mops=ideal_rate / 1e6,
        bottleneck=bottleneck)


@lru_cache(maxsize=None)
def read_round_trip_ps(nic: NicConfig, host: HostConfig,
                       payload_bytes: int) -> int:
    """First-order READ round-trip estimate (for the credits bound)."""
    request_wire = cfg.wire_bytes_for_frame(
        cfg.IPV4_HEADER_BYTES + cfg.UDP_HEADER_BYTES + cfg.BTH_BYTES
        + cfg.RETH_BYTES + cfg.ICRC_BYTES)
    response_wire = cfg.wire_bytes_of_message(payload_bytes)
    pipeline = nic.cycles(2 * (nic.rx_pipeline_cycles
                               + nic.tx_pipeline_cycles
                               + 2 * nic.strom_arbitration_cycles))
    return (host.mmio_command_cost + nic.pcie_write_latency
            + timebase.transfer_time_ps(request_wire + response_wire,
                                        nic.line_rate_bps)
            + 2 * nic.wire_propagation + pipeline
            + nic.pcie_read_latency + nic.pcie_write_latency)


@lru_cache(maxsize=None)
def read_throughput(nic: NicConfig, host: HostConfig,
                    payload_bytes: int) -> ThroughputPoint:
    """Steady-state RDMA READ goodput (credit-limited for small reads)."""
    ideal_rate = cfg.ideal_message_rate(payload_bytes, nic.line_rate_bps)
    host_rate = host_message_rate(host)
    pcie_rate = pcie_goodput_bps(nic, payload_bytes) / (payload_bytes * 8)
    rtt = read_round_trip_ps(nic, host, payload_bytes)
    credit_rate = nic.max_outstanding_reads * timebase.SEC / rtt
    rate = min(ideal_rate, host_rate, pcie_rate, credit_rate)
    bottleneck = {ideal_rate: "wire", host_rate: "host-mmio",
                  pcie_rate: "pcie", credit_rate: "read-credits"}[rate]
    return ThroughputPoint(
        payload_bytes=payload_bytes,
        goodput_gbps=rate * payload_bytes * 8 / 1e9,
        message_rate_mops=rate / 1e6,
        ideal_goodput_gbps=ideal_rate * payload_bytes * 8 / 1e9,
        ideal_message_rate_mops=ideal_rate / 1e6,
        bottleneck=bottleneck)


# ---------------------------------------------------------------------------
# Figure 11: shuffle execution time
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShuffleTimes:
    """Execution time (seconds) of the three Figure 11 approaches."""

    input_mib: int
    sw_write_s: float
    strom_s: float
    write_s: float


@lru_cache(maxsize=None)
def bulk_write_goodput_bps(nic: NicConfig) -> float:
    """Large-transfer goodput: MTU-sized packets at line rate."""
    point = write_throughput(nic, cfg.HOST_DEFAULT,
                             cfg.MAX_PAYLOAD_WITH_RETH)
    return point.goodput_gbps * 1e9


@lru_cache(maxsize=None)
def shuffle_times(nic: NicConfig, host: HostConfig,
                  input_bytes: int, tuple_bytes: int = 8) -> ShuffleTimes:
    """Figure 11's three bars for one input size.

    - RDMA WRITE: pure transmission at bulk goodput.
    - StRoM: same transmission; partitioning happens on the receiving
      NIC at line rate (the kernel's PCIe random-access writes stay below
      the PCIe budget at 10 G, see Section 7 for when they do not) plus
      the histogram RPC and the final buffer flush.
    - SW + RDMA WRITE: a serial partition pass over every tuple on the
      sending CPU (hash + copy), then the same transmission.
    """
    from ..host.cpu import CpuModel
    cpu = CpuModel(host)
    goodput = bulk_write_goodput_bps(nic)
    transmit_s = input_bytes * 8 / goodput

    # StRoM: receiving-side partitioning is a bump in the wire unless the
    # random-access PCIe bandwidth cannot absorb the line rate.
    pcie_random = pcie_goodput_bps(nic, 128, sequential=False)
    strom_rate = min(goodput, pcie_random)
    strom_s = input_bytes * 8 / strom_rate \
        + timebase.to_seconds(2 * nic.pcie_read_latency)  # RPC + flush tail

    num_tuples = input_bytes // tuple_bytes
    partition_s = timebase.to_seconds(cpu.partition_time(num_tuples))
    sw_s = partition_s + transmit_s

    return ShuffleTimes(input_mib=input_bytes // (1024 * 1024),
                        sw_write_s=sw_s, strom_s=strom_s,
                        write_s=transmit_s)


# ---------------------------------------------------------------------------
# Figure 13: HLL throughput
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def hll_cpu_throughput_gbps(host: HostConfig, threads: int,
                            nic_ingest_gbps: float = 25.0) -> float:
    """Figure 13a: software HLL while StRoM feeds data into memory."""
    from ..host.cpu import CpuModel
    return CpuModel(host).hll_throughput_gbps(threads, nic_ingest_gbps)


@lru_cache(maxsize=None)
def hll_kernel_throughput(nic: NicConfig, host: HostConfig,
                          payload_bytes: int) -> ThroughputPoint:
    """Figure 13b: RDMA WRITE throughput with the HLL kernel as a bump in
    the wire.  The kernel consumes one data-path word per cycle (II=1),
    so its capacity is datapath * clock >= line rate and the write curve
    is unchanged; the pass-through DMA write must also fit PCIe."""
    base = write_throughput(nic, host, payload_bytes)
    kernel_capacity_bps = (nic.datapath_bytes * 8) * nic.roce_clock_hz
    pcie_bps = pcie_goodput_bps(nic, max(payload_bytes, 256))
    limit_gbps = min(kernel_capacity_bps, pcie_bps) / 1e9
    goodput = min(base.goodput_gbps, limit_gbps)
    return ThroughputPoint(
        payload_bytes=payload_bytes,
        goodput_gbps=goodput,
        message_rate_mops=base.message_rate_mops,
        ideal_goodput_gbps=base.ideal_goodput_gbps,
        ideal_message_rate_mops=base.ideal_message_rate_mops,
        bottleneck=base.bottleneck if goodput == base.goodput_gbps
        else "kernel")
