"""Cross-validation experiments: the model checking itself.

- :func:`flow_vs_detailed_experiment` compares the analytic flow model
  against the packet-level simulation on overlapping operating points —
  the evidence that the fast projections used for the bulk-throughput
  figures are projections of the simulator, not independent guesses.
- :func:`stack_budget_experiment` evaluates Section 4.1's cycle-budget
  argument (the 5-cycle State Table access vs the packet arrival rate)
  for both builds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config import HOST_DEFAULT, NIC_10G, NIC_100G, HostConfig, NicConfig
from ..roce.stack_model import line_rate_verdict
from . import flowmodel
from .common import ExperimentResult, measure_write_throughput

#: (config, payload, messages) operating points for the agreement check.
DEFAULT_POINTS: List[Tuple[NicConfig, int, int]] = [
    (NIC_10G, 1024, 64),
    (NIC_10G, 4096, 48),
    (NIC_10G, 65536, 12),
    (NIC_100G, 4096, 64),
    (NIC_100G, 65536, 24),
]


def flow_vs_detailed_experiment(points=None,
                                host: HostConfig = HOST_DEFAULT
                                ) -> ExperimentResult:
    """Write-goodput agreement between the two fidelity modes."""
    points = points or DEFAULT_POINTS
    result = ExperimentResult(
        experiment_id="validation-flow",
        title="Flow model vs detailed packet simulation (write goodput)",
        columns=["build", "payload_B", "detailed_gbps", "flow_gbps",
                 "gap_pct"],
        notes="finite-run pipeline-fill effects explain the residual gap")
    for config, payload, messages in points:
        detailed = measure_write_throughput(config, host,
                                            payload_bytes=payload,
                                            messages=messages)
        flow = flowmodel.write_throughput(config, host, payload)
        gap = 100.0 * abs(detailed - flow.goodput_gbps) / flow.goodput_gbps
        result.add_row(build=config.name, payload_B=payload,
                       detailed_gbps=detailed,
                       flow_gbps=flow.goodput_gbps, gap_pct=gap)
    return result


def stack_budget_experiment(host: HostConfig = HOST_DEFAULT
                            ) -> ExperimentResult:
    """Section 4.1's line-rate argument for both builds."""
    result = ExperimentResult(
        experiment_id="validation-stack-budget",
        title="Pipeline cycle budget vs packet arrival (Section 4.1)",
        columns=["build", "payload_B", "arrival_cycles", "stage_cycles",
                 "sustains", "effective_limit"],
        notes="the 5-cycle State Table access is oversubscribed for "
              "small packets at 100 G but masked by the host message "
              "rate (Section 4.1/7.1)")
    for config in (NIC_10G, NIC_100G):
        for payload in (1, 64, 1440):
            verdict = line_rate_verdict(config, host, payload)
            result.add_row(build=config.name, payload_B=payload,
                           arrival_cycles=verdict.arrival_cycles,
                           stage_cycles=verdict.worst_stage_cycles,
                           sustains=verdict.pipeline_sustains,
                           effective_limit=verdict.effectively_limited_by)
    return result
