"""Experiment harnesses: one module per published table/figure, plus the
analytic flow model and the detailed measurement procedures.

See DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured records.
"""

from . import flowmodel
from .ablations import (
    datapath_width_ablation,
    doorbell_batching_ablation,
    interconnect_latency_ablation,
    outstanding_reads_ablation,
)
from .common import (
    ExperimentResult,
    measure_message_rate,
    measure_read_latency,
    measure_write_latency,
    measure_write_throughput,
)
from .fig05_microbench import (
    latency_experiment,
    message_rate_experiment,
    throughput_experiment,
)
from .fig07_linked_list import linked_list_experiment
from .fig08_hash_table import hash_table_experiment
from .fig09_consistency import (
    consistency_latency_experiment,
    failure_rate_experiment,
)
from .fig11_shuffle import shuffle_detailed_run, shuffle_experiment
from .fig13_hll import hll_cpu_experiment, hll_kernel_experiment
from .runner import run_experiments
from .table3_resources import table3_experiment, virtex7_experiment
from .validation import flow_vs_detailed_experiment, stack_budget_experiment

__all__ = [
    "ExperimentResult",
    "consistency_latency_experiment",
    "datapath_width_ablation",
    "doorbell_batching_ablation",
    "interconnect_latency_ablation",
    "outstanding_reads_ablation",
    "failure_rate_experiment",
    "flow_vs_detailed_experiment",
    "flowmodel",
    "stack_budget_experiment",
    "hash_table_experiment",
    "hll_cpu_experiment",
    "hll_kernel_experiment",
    "latency_experiment",
    "linked_list_experiment",
    "measure_message_rate",
    "measure_read_latency",
    "measure_write_latency",
    "measure_write_throughput",
    "message_rate_experiment",
    "run_experiments",
    "shuffle_detailed_run",
    "shuffle_experiment",
    "table3_experiment",
    "throughput_experiment",
    "virtex7_experiment",
]
