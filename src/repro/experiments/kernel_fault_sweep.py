"""Kernel-fault sweep: service degradation under hostile/corrupted
kernel invocations, with protection domains and watchdog budgets on.

Not a paper figure — StRoM's evaluation assumes well-formed kernel
parameters and intact data structures — but the question the hardened
kernel plane (:mod:`repro.core.guard`) must answer: as the rate of
*hostile* traversal invocations rises (pointer cycles from corrupted
next pointers, wild out-of-PD pointers, malformed parameter blocks),
how do goodput and tail latency of the regular sharded-KV workload
degrade, and does the service stay fully available (zero failed client
requests) by quarantining the abused kernel and falling back to
one-sided READs?

Methodology: each operating point builds a 2-shard star (2 servers + 2
clients) with *hardened* kernels (per-shard protection domains, a
deadline/DMA/hop budget, quarantine after 3 consecutive aborts) and a
fixed open-loop load.  The fault schedule plants a self-cycling poison
element (``corrupt_pointer``) at 20 % of the window and wedges shard
1's kernel (``stall_kernel``) beyond its deadline mid-window; an
attacker process fires ``fault_level`` hostile RPCs at shard 0 spread
over the window.  Every run is seeded; with the same ``--seed`` the
sweep's JSON output is byte-identical across runs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..cluster import (
    RetryPolicy,
    ShardedKvClient,
    ShardedKvService,
    WorkloadConfig,
    build_star,
    populate,
    run_open_loop,
)
from ..core.guard import InvocationBudget
from ..core.rpc import (
    RPC_ERROR_ABORTED,
    RPC_ERROR_PROTECTION,
    RPC_ERROR_TIMEOUT,
    RpcOpcode,
    RpcPreamble,
    pack_params,
)
from ..faults import FaultSchedule
from ..kernels.traversal import ELEMENT_BYTES, PredicateOp, TraversalParams
from ..obs.runtime import registry_for
from ..sim import MS, US, Simulator
from .common import ExperimentResult

#: Swept hostile-invocation counts per window.
DEFAULT_FAULT_LEVELS = (0, 2, 4, 8)

#: Per-invocation budget of the hardened deployment.  Generous enough
#: that legitimate GETs (a few hops, one value read) never trip it.
HARDENED_BUDGET = InvocationBudget(deadline_ps=400 * US,
                                   dma_byte_quota=1 << 20,
                                   hop_limit=64)


def _hostile_params(response_vaddr: int, remote: int) -> bytes:
    return TraversalParams(
        response_vaddr=response_vaddr, remote_address=remote,
        value_size=8, key=1, key_mask=1,
        predicate_op=PredicateOp.EQUAL, value_ptr_position=4,
        is_relative_position=False, next_element_ptr_position=2,
        next_element_ptr_valid=True).pack()


def run_kernel_fault_point(fault_level: int,
                           seed: int = 7,
                           offered_per_shard: float = 40_000.0,
                           window_ps: int = 2 * MS,
                           num_keys: int = 128,
                           value_bytes: int = 128
                           ) -> Dict[str, object]:
    """One operating point; returns a flat JSON-serializable row."""
    num_shards = 2
    env = Simulator()
    cluster = build_star(env, num_hosts=2 * num_shards, seed=seed)
    servers = cluster.hosts[:num_shards]
    service = ShardedKvService(cluster, servers, replicas=2,
                               kernel_protection=True,
                               kernel_budget=HARDENED_BUDGET,
                               quarantine_threshold=3)
    populate(service, num_keys=num_keys, value_bytes=value_bytes)
    clients = [ShardedKvClient(cluster, service, node, seed=seed + i,
                               retry_policy=RetryPolicy())
               for i, node in enumerate(cluster.hosts[num_shards:])]

    # Poison element inside shard 0's values region (PD-covered, so a
    # hostile traversal chases it); its next pointer is nulled until the
    # scheduled corruption turns it into a cycle.
    shard0 = service.shards[0]
    poison = shard0.values.vaddr + shard0.values.nbytes - ELEMENT_BYTES
    shard0.node.space.write(
        poison, (0xBAD).to_bytes(8, "little").ljust(ELEMENT_BYTES, b"\0"))
    wild = shard0.values.vaddr + shard0.values.nbytes + (1 << 24)

    schedule = FaultSchedule(env, seed=seed)
    # 20 % of the window: the poison element's next pointer is bent back
    # at itself — every hostile traversal from here on cycles.
    schedule.corrupt_pointer(int(0.2 * window_ps), shard0.node,
                             poison + 8, poison)
    if fault_level > 0:
        # Mid-window: wedge shard 1's kernel past its deadline; the
        # watchdog aborts the stuck invocation with RPC_ERROR_TIMEOUT
        # and clients fall back to READs on that shard too.
        schedule.stall_kernel(int(0.5 * window_ps), service.kernels[1],
                              duration=2 * HARDENED_BUDGET.deadline_ps)
    schedule.start()

    attacker_done = [0]

    def attacker():
        node = clients[0].node
        resp = node.alloc(64, "atk_resp")
        start = int(0.25 * window_ps)
        gap = int(0.6 * window_ps) // max(fault_level, 1)
        yield env.timeout(start)
        for burst_start in range(0, fault_level, 3):
            burst = range(burst_start, min(burst_start + 3, fault_level))
            # Alternate pointer-cycle and out-of-PD shots, posted
            # back-to-back *without* waiting for responses in between:
            # the quarantine latch needs *consecutive* aborts, and a
            # legitimate GET completing inside a response round trip
            # would reset the streak.
            connection = yield from clients[0]._lease(0)
            try:
                slots = []
                for shot in burst:
                    slot = resp.vaddr + 8 * (shot % 3)
                    node.space.write(slot, b"\x00" * 8)
                    slots.append(slot)
                    yield from connection.fabric.client.post_rpc(
                        connection.fabric.client_qpn, RpcOpcode.TRAVERSAL,
                        _hostile_params(slot, poison if shot % 2 == 0
                                        else wild))
                for slot in slots:
                    while node.space.read(slot, 8) == b"\x00" * 8:
                        yield env.timeout(2 * US)
            finally:
                clients[0]._release(0, connection)
            yield env.timeout(gap)
        # One malformed parameter block (truncated body): answered with
        # RPC_ERROR_BAD_PARAMS (or QUARANTINED) without kernel service.
        raw = pack_params(RpcPreamble(resp.vaddr), b"\x00" * 8)
        connection = yield from clients[0]._lease(0)
        try:
            yield from connection.fabric.client.post_rpc(
                connection.fabric.client_qpn, RpcOpcode.TRAVERSAL, raw)
            yield from connection.fabric.client.wait_for_data(
                resp.vaddr, 8)
        finally:
            clients[0]._release(0, connection)
        attacker_done[0] = 1

    if fault_level > 0:
        env.process(attacker())

    config = WorkloadConfig(
        offered_ops_per_s=offered_per_shard * num_shards,
        window_ps=window_ps, num_keys=num_keys, read_fraction=0.95,
        value_bytes=value_bytes, get_path="strom", seed=seed)
    report = run_open_loop(env, clients, config)
    env.run()  # drain the attacker's trailing shots
    if report.completed != report.issued:
        raise RuntimeError(
            f"kernel-fault point did not drain: {report.completed} of "
            f"{report.issued} completed (hang)")
    if fault_level > 0 and not attacker_done[0]:
        raise RuntimeError("hostile-RPC driver wedged")

    guards = [k.guard for k in service.kernels]
    aborts_by = lambda code: sum(g.abort_counts.get(code, 0)
                                 for g in guards)
    pct = report.latency_percentiles_us()
    flat = registry_for(env).snapshot().as_flat_dict()
    kv_counter = lambda suffix: sum(
        v for k, v in flat.items() if k.endswith(f".kv.{suffix}"))
    return {
        "fault_level": fault_level,
        "offered_kops": config.offered_ops_per_s / 1e3,
        "goodput_kops": report.achieved_ops_per_s / 1e3,
        "p50_us": pct[0.50],
        "p99_us": pct[0.99],
        "issued": report.issued,
        "failed": report.failed,
        "aborts_protection": aborts_by(RPC_ERROR_PROTECTION),
        "aborts_cycle": aborts_by(RPC_ERROR_ABORTED),
        "aborts_timeout": aborts_by(RPC_ERROR_TIMEOUT),
        "params_rejected": sum(k.params_rejected
                               for k in service.kernels),
        "refused": sum(k.invocations_refused for k in service.kernels),
        "quarantined": sum(1 for g in guards if g.quarantined),
        "quarantined_answers": sum(
            int(shard.node.nic.registry.quarantined)
            for shard in service.shards),
        "strom_fallbacks": int(kv_counter("strom_fallbacks")),
        "faults_injected": int(schedule.injected),
    }


def kernel_fault_sweep_experiment(
        fault_levels: Sequence[int] = DEFAULT_FAULT_LEVELS,
        seed: int = 7,
        offered_per_shard: float = 40_000.0,
        window_ps: int = 2 * MS,
        experiment_id: str = "kernel-fault-sweep") -> ExperimentResult:
    """Degradation curves vs hostile kernel invocations per window."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="Sharded-KV service under hostile kernel invocations "
              "(protection domains + watchdog budgets on)",
        columns=["fault_level", "offered_kops", "goodput_kops", "p50_us",
                 "p99_us", "failed", "aborts_protection", "aborts_cycle",
                 "aborts_timeout", "params_rejected", "refused",
                 "quarantined", "quarantined_answers", "strom_fallbacks",
                 "faults_injected"],
        notes=(f"2 shards, primary/backup replication, seed {seed}; "
               "hardened kernels (per-shard PD, 400us deadline, 1 MiB "
               "DMA quota, 64-hop limit, quarantine after 3 consecutive "
               "aborts); hostile traversals cycle on a corrupted "
               "pointer, dereference out-of-PD addresses, or carry "
               "malformed params; shard 1's kernel is stalled past its "
               "deadline mid-window.  failed must stay 0: faults "
               "degrade latency, never availability."))
    for level in fault_levels:
        result.add_row(**run_kernel_fault_point(
            level, seed=seed, offered_per_shard=offered_per_shard,
            window_ps=window_ps))
    return result
