"""Figures 5 and 12: StRoM RoCE NIC microbenchmarks.

(a) median latency of RDMA read/write with 1st/99th-percentile whiskers,
(b) throughput over payload sizes 64 B - 1 MB with the ideal line,
(c) message rate for small payloads with the ideal line.

The same procedures serve the 10 G build (Figure 5) and the 100 G build
(Figure 12); only the :class:`NicConfig` differs.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import HOST_DEFAULT, NIC_10G, HostConfig, NicConfig
from . import flowmodel
from .common import (
    ExperimentResult,
    measure_read_latency,
    measure_write_latency,
)

LATENCY_PAYLOADS = [64, 128, 256, 512, 1024]
THROUGHPUT_PAYLOADS = [2 ** p for p in range(6, 21)]  # 64 B .. 1 MB
MESSAGE_RATE_PAYLOADS = [64, 256, 1024, 4096]


def latency_experiment(nic_config: NicConfig = NIC_10G,
                       host_config: HostConfig = HOST_DEFAULT,
                       payloads: Optional[List[int]] = None,
                       iterations: int = 50,
                       experiment_id: str = "fig5a") -> ExperimentResult:
    """Figure 5a / 12a."""
    payloads = payloads or LATENCY_PAYLOADS
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"RDMA latency on {nic_config.name} "
              "(median, p1/p99 whiskers, us)",
        columns=["payload_B", "write_med_us", "write_p01_us",
                 "write_p99_us", "read_med_us", "read_p01_us",
                 "read_p99_us"],
        notes="write latency = ping-pong RTT/2 (paper methodology)")
    for payload in payloads:
        write = measure_write_latency(nic_config, host_config, payload,
                                      iterations)
        read = measure_read_latency(nic_config, host_config, payload,
                                    iterations)
        result.add_row(payload_B=payload,
                       write_med_us=write.median_us,
                       write_p01_us=write.p01_us,
                       write_p99_us=write.p99_us,
                       read_med_us=read.median_us,
                       read_p01_us=read.p01_us,
                       read_p99_us=read.p99_us)
    return result


def throughput_experiment(nic_config: NicConfig = NIC_10G,
                          host_config: HostConfig = HOST_DEFAULT,
                          payloads: Optional[List[int]] = None,
                          experiment_id: str = "fig5b") -> ExperimentResult:
    """Figure 5b / 12b (flow model; detailed spot checks in the tests)."""
    payloads = payloads or THROUGHPUT_PAYLOADS
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"RDMA throughput on {nic_config.name} (Gbit/s)",
        columns=["payload_B", "write_gbps", "read_gbps", "ideal_gbps",
                 "bottleneck"])
    for payload in payloads:
        write = flowmodel.write_throughput(nic_config, host_config, payload)
        read = flowmodel.read_throughput(nic_config, host_config, payload)
        result.add_row(payload_B=payload,
                       write_gbps=write.goodput_gbps,
                       read_gbps=read.goodput_gbps,
                       ideal_gbps=write.ideal_goodput_gbps,
                       bottleneck=write.bottleneck)
    return result


def message_rate_experiment(nic_config: NicConfig = NIC_10G,
                            host_config: HostConfig = HOST_DEFAULT,
                            payloads: Optional[List[int]] = None,
                            experiment_id: str = "fig5c"
                            ) -> ExperimentResult:
    """Figure 5c / 12c."""
    payloads = payloads or MESSAGE_RATE_PAYLOADS
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=f"RDMA message rate on {nic_config.name} (M msg/s)",
        columns=["payload_B", "write_mops", "read_mops", "ideal_mops",
                 "bottleneck"])
    for payload in payloads:
        write = flowmodel.write_throughput(nic_config, host_config, payload)
        read = flowmodel.read_throughput(nic_config, host_config, payload)
        result.add_row(payload_B=payload,
                       write_mops=write.message_rate_mops,
                       read_mops=read.message_rate_mops,
                       ideal_mops=write.ideal_message_rate_mops,
                       bottleneck=write.bottleneck)
    return result
