"""DMA engine: the NIC's path to host memory over PCIe (Section 4.3).

Models the XDMA core with descriptor bypass: the NIC issues read/write
commands without CPU synchronization.  Each command is translated and
split by the TLB, then moves bytes over a shared, FIFO-ordered PCIe
bandwidth link.  Reads cost a round trip (~1.5 us, paper footnote 7);
writes are posted.  Completion *watches* let simulated host software poll
for data arrival without busy-looping simulation events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..config import NicConfig
from ..memory import PhysicalMemory
from ..obs.runtime import registry_for, trace_for
from ..sim import BandwidthLink, Event, Simulator
from .tlb import Tlb

#: Fixed per-TLP overhead on the PCIe link (headers + DLLP traffic).
PCIE_TLP_OVERHEAD_BYTES = 24


@dataclass
class DmaCommand:
    """One kernel- or stack-issued DMA command (the 12 B command bus of
    Figure 4: virtual address + length + direction)."""

    vaddr: int
    length: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("DMA length must be positive")
        if self.vaddr < 0:
            raise ValueError("negative DMA address")


class DmaEngine:
    """Executes DMA commands against the host's physical memory."""

    def __init__(self, env: Simulator, config: NicConfig,
                 memory: PhysicalMemory, tlb: Tlb,
                 name: str = "dma") -> None:
        self.env = env
        self.config = config
        self.memory = memory
        self.tlb = tlb
        # PCIe is full duplex: host->card (read completions) and
        # card->host (posted writes) travel on independent lanes and do
        # not share bandwidth.  Each direction serves DMA *bursts* in
        # FIFO order; read/write latency overlaps between outstanding
        # bursts (descriptor bypass allows many in flight).
        self.read_link = BandwidthLink(
            env, config.pcie_bandwidth_bps,
            per_transfer_overhead_bytes=PCIE_TLP_OVERHEAD_BYTES,
            name=f"{name}.pcie_h2c")
        self.write_link = BandwidthLink(
            env, config.pcie_bandwidth_bps,
            per_transfer_overhead_bytes=PCIE_TLP_OVERHEAD_BYTES,
            name=f"{name}.pcie_c2h")
        self.name = name
        metrics = registry_for(env)
        self.metrics = metrics
        self.trace = trace_for(env)
        self.reads = metrics.counter(f"{name}.reads")
        self.writes = metrics.counter(f"{name}.writes")
        self.bytes_read = metrics.counter(f"{name}.bytes_read")
        self.bytes_written = metrics.counter(f"{name}.bytes_written")
        self._watches: List[Tuple[int, int, Event]] = []

    # ------------------------------------------------------------------
    # Transfers (process helpers: use with ``yield from``)
    # ------------------------------------------------------------------
    def read(self, vaddr: int, length: int, sequential: bool = True):
        """Fetch ``length`` bytes at virtual ``vaddr`` from host memory.

        Returns the bytes.  Costs one PCIe round-trip latency (which
        overlaps between outstanding reads) plus one FIFO burst on the
        host->card lanes; random access patterns pay the reduced
        effective bandwidth of Section 7.
        """
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_read", vaddr=vaddr, length=length)
        pieces = list(self.tlb.split_command(vaddr, length))
        yield self.env.timeout(self.config.pcie_read_latency)
        yield self.read_link._mutex.acquire()
        try:
            chunks = []
            for paddr, chunk_len in pieces:
                yield from self._occupy(self.read_link, chunk_len,
                                        sequential)
                chunks.append(self.memory.read(paddr, chunk_len))
        finally:
            self.read_link._mutex.release()
        self.reads.add()
        self.bytes_read.add(length)
        if self.trace is not None:
            self.trace.end_span(span)
        return b"".join(chunks)

    def read_stream(self, vaddr: int, chunk_lengths, out_stream,
                    sequential: bool = True):
        """Streaming fetch: deliver consecutive chunks of
        ``chunk_lengths`` bytes into ``out_stream`` as they cross PCIe.

        Models the XDMA stream interface with descriptor bypass: one
        initial read latency (overlapping between outstanding bursts),
        then the burst holds the host->card lanes and delivers chunks
        cut-through — so a consumer (the TX path, a kernel) overlaps
        fetching with its own processing, and concurrent bursts are
        served strictly in issue order (no head-of-line interleaving).
        """
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_stream_read", vaddr=vaddr)
        yield self.env.timeout(self.config.pcie_read_latency)
        yield self.read_link._mutex.acquire()
        try:
            cursor = vaddr
            total = 0
            for chunk_len in chunk_lengths:
                if chunk_len <= 0:
                    raise ValueError("chunk lengths must be positive")
                parts = []
                for paddr, piece_len in self.tlb.split_command(cursor,
                                                               chunk_len):
                    yield from self._occupy(self.read_link, piece_len,
                                            sequential)
                    parts.append(self.memory.read(paddr, piece_len))
                cursor += chunk_len
                total += chunk_len
                yield out_stream.put(b"".join(parts))
        finally:
            self.read_link._mutex.release()
        self.reads.add()
        self.bytes_read.add(total)
        if self.trace is not None:
            self.trace.end_span(span, length=total)

    def write(self, vaddr: int, data: bytes, sequential: bool = True):
        """Post ``data`` to virtual ``vaddr`` in host memory.

        Completes (in simulation) when the data is globally visible to
        the host: posted-write latency (overlapping between writes) plus
        one FIFO burst on the card->host lanes.
        """
        if not data:
            return
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_write", vaddr=vaddr, length=len(data))
        pieces = list(self.tlb.split_command(vaddr, len(data)))
        yield self.env.timeout(self.config.pcie_write_latency)
        yield self.write_link._mutex.acquire()
        try:
            view = memoryview(data)
            for paddr, chunk_len in pieces:
                yield from self._occupy(self.write_link, chunk_len,
                                        sequential)
                self.memory.write(paddr, bytes(view[:chunk_len]))
                view = view[chunk_len:]
        finally:
            self.write_link._mutex.release()
        self.writes.add()
        self.bytes_written.add(len(data))
        if self.trace is not None:
            self.trace.end_span(span)
        self._fire_watches(vaddr, len(data))

    def _occupy(self, link: BandwidthLink, num_bytes: int,
                sequential: bool):
        """Occupy an (already acquired) link for one piece's time."""
        effective = num_bytes
        if not sequential:
            # Random access wastes bandwidth on partial bursts (Section 7):
            # model as inflated occupancy.
            effective = int(num_bytes / self.config.pcie_random_access_factor)
        duration = link.occupancy_ps(effective)
        if self.config.per_word_accounting:
            # One timeout per data-path word; divmod spreads the burst
            # duration so the per-word charges sum to it exactly.
            words = self.config.words(num_bytes)
            base, extra = divmod(duration, words)
            for i in range(words):
                yield self.env.timeout(base + 1 if i < extra else base)
        else:
            yield self.env.timeout(duration)
        link.bytes_transferred += num_bytes
        link.busy_time += duration

    # ------------------------------------------------------------------
    # Completion watches (host polling support)
    # ------------------------------------------------------------------
    def watch(self, vaddr: int, length: int) -> Event:
        """An event that succeeds when a DMA write touches
        [vaddr, vaddr+length); its value is the completion timestamp."""
        if length <= 0:
            raise ValueError("watch length must be positive")
        event = Event(self.env)
        self._watches.append((vaddr, length, event))
        return event

    def _fire_watches(self, vaddr: int, length: int) -> None:
        if not self._watches:
            return
        end = vaddr + length
        remaining = []
        for wstart, wlen, event in self._watches:
            if wstart < end and vaddr < wstart + wlen:
                event.succeed(self.env.now)
            else:
                remaining.append((wstart, wlen, event))
        self._watches = remaining


class MmioPath:
    """Host -> NIC command path (Section 4.3 driver + Controller).

    The host issues one command per memory-mapped AVX2 store; stores are
    serialized on the CPU (bounding the message rate, Section 7.1) and
    become visible to the NIC a posted-write latency later.
    """

    def __init__(self, env: Simulator, issue_cost: int,
                 crossing_latency: int, deliver: Callable[[object], None],
                 jitter_seed: int = 0, name: str = "mmio") -> None:
        self.env = env
        self.issue_cost = issue_cost
        self.crossing_latency = crossing_latency
        self.deliver = deliver
        self.name = name
        self.commands_issued = registry_for(env).counter(
            f"{name}.commands")
        self._rng = random.Random(jitter_seed)
        from ..sim import Resource
        self._cpu_port = Resource(env, capacity=1)

    def post(self, command: object):
        """Process helper: issue one command from the host CPU."""
        yield self._cpu_port.acquire()
        try:
            # Rare TLB-shootdown / cache-miss hiccups give the latency
            # distribution its p99 tail.
            cost = self.issue_cost
            if self._rng.random() < 0.02:
                cost += self.issue_cost * 3
            yield self.env.timeout(cost)
        finally:
            self._cpu_port.release()
        self.commands_issued.add()
        self.env.process(self._cross([command]))

    def post_batch(self, commands):
        """Doorbell batching: several commands written to a command ring
        and announced with a *single* MMIO store — the fix Section 7.1
        anticipates for the host-bound message rate at 100 G.  The batch
        costs one store plus a small per-entry ring-write cost."""
        commands = list(commands)
        if not commands:
            return
        yield self._cpu_port.acquire()
        try:
            # Ring entries are plain (cacheable) stores: ~8x cheaper than
            # an uncached MMIO store each.
            cost = self.issue_cost + (len(commands) - 1) * \
                max(1, self.issue_cost // 8)
            yield self.env.timeout(cost)
        finally:
            self._cpu_port.release()
        self.commands_issued.add(len(commands))
        self.env.process(self._cross(commands))

    def _cross(self, commands):
        yield self.env.timeout(self.crossing_latency)
        for command in commands:
            self.deliver(command)
