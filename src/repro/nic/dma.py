"""DMA engine: the NIC's path to host memory over PCIe (Section 4.3).

Models the XDMA core with descriptor bypass: the NIC issues read/write
commands without CPU synchronization.  Each command is translated and
split by the TLB, then moves bytes over a shared, FIFO-ordered PCIe
bandwidth link.  Reads cost a round trip (~1.5 us, paper footnote 7);
writes are posted.  Completion *watches* let simulated host software poll
for data arrival without busy-looping simulation events.

Zero-copy payload plane (see :mod:`repro.core.payload`): streaming reads
hand out :class:`~repro.core.payload.PayloadRef` views over the physical
pages instead of joined copies, and writes scatter such views directly
into the destination pages.  PCIe FIFO ordering is enforced
arithmetically (:meth:`repro.sim.BandwidthLink.reserve_after`): the fixed
pre-transfer latency is folded into the reservation's floor, so a whole
burst — latency included — costs at most one timeout.  The
:class:`FetchPlan` fast path goes further: the burst is reserved
*synchronously* at issue and the consumer computes each chunk's ready
time from the slot, so a TX-path fetch costs zero scheduler events per
packet in steady state.  Since every competing transfer on a lane pays
the same latency, folding it into the floor yields timestamps identical
to sleeping the latency first (call order == wake order).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..check import checker_for
from ..config import NicConfig
from ..core.payload import PayloadRef
from ..memory import PhysicalMemory
from ..obs.runtime import registry_for, trace_for
from ..sim import BandwidthLink, Event, Simulator
from .tlb import Tlb

#: Fixed per-TLP overhead on the PCIe link (headers + DLLP traffic).
PCIE_TLP_OVERHEAD_BYTES = 24


@dataclass
class DmaCommand:
    """One kernel- or stack-issued DMA command (the 12 B command bus of
    Figure 4: virtual address + length + direction)."""

    vaddr: int
    length: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("DMA length must be positive")
        if self.vaddr < 0:
            raise ValueError("negative DMA address")


class FetchPlan:
    """Chunk source for the zero-copy TX path.

    One PCIe burst is reserved synchronously at issue; each chunk's
    completion time is then pure arithmetic (``start + cumulative
    occupancy``), so the consumer waits only when it outruns PCIe — at
    line-rate streaming charges it never does, and a fetched packet costs
    *zero* scheduler events.  Chunks come out as :class:`PayloadRef`
    views.

    Use with ``chunk = yield from plan.next_chunk()`` from the consuming
    process, strictly in order.
    """

    __slots__ = ("_dma", "_env", "_chunk_pieces", "_cum", "_start",
                 "_index", "_stable")

    def __init__(self, dma: "DmaEngine", chunk_pieces, cum_ends,
                 start: int, stable: bool = False) -> None:
        self._dma = dma
        self._env = dma.env
        self._chunk_pieces = chunk_pieces
        self._cum = cum_ends
        self._start = start
        self._index = 0
        self._stable = stable

    def next_chunk(self):
        """Process helper: the next chunk, at its PCIe arrival time."""
        index = self._index
        self._index = index + 1
        env = self._env
        due = self._start + self._cum[index]
        if due > env.now:
            yield env.timeout(due - env.now)
        return self._dma._view_of(self._chunk_pieces[index], self._stable)


class StreamChunks:
    """Adapter giving a fetch Stream the FetchPlan consumer protocol
    (used by the per-word validation mode, which keeps the explicit
    chunk-by-chunk delivery process)."""

    __slots__ = ("_queue",)

    def __init__(self, queue) -> None:
        self._queue = queue

    def next_chunk(self):
        chunk = yield self._queue.get()
        return chunk


class DmaEngine:
    """Executes DMA commands against the host's physical memory."""

    def __init__(self, env: Simulator, config: NicConfig,
                 memory: PhysicalMemory, tlb: Tlb,
                 name: str = "dma") -> None:
        self.env = env
        self.config = config
        self.memory = memory
        self.tlb = tlb
        # PCIe is full duplex: host->card (read completions) and
        # card->host (posted writes) travel on independent lanes and do
        # not share bandwidth.  Each direction serves DMA *bursts* in
        # FIFO order; read/write latency overlaps between outstanding
        # bursts (descriptor bypass allows many in flight).
        self.read_link = BandwidthLink(
            env, config.pcie_bandwidth_bps,
            per_transfer_overhead_bytes=PCIE_TLP_OVERHEAD_BYTES,
            name=f"{name}.pcie_h2c")
        self.write_link = BandwidthLink(
            env, config.pcie_bandwidth_bps,
            per_transfer_overhead_bytes=PCIE_TLP_OVERHEAD_BYTES,
            name=f"{name}.pcie_c2h")
        self.name = name
        metrics = registry_for(env)
        self.metrics = metrics
        self.trace = trace_for(env)
        self.check = checker_for(env)
        self.reads = metrics.counter(f"{name}.reads")
        self.writes = metrics.counter(f"{name}.writes")
        self.bytes_read = metrics.counter(f"{name}.bytes_read")
        self.bytes_written = metrics.counter(f"{name}.bytes_written")
        #: Payload bytes that crossed this engine by reference (views)
        #: vs. as materialized copies — the zero-copy plane's obs view.
        self.payload_ref_bytes = metrics.counter(
            f"{name}.payload_ref_bytes")
        self.payload_copy_bytes = metrics.counter(
            f"{name}.payload_copy_bytes")
        self._watches: List[Tuple[int, int, Event]] = []
        #: While a burst flight has this engine's write lane eagerly
        #: reserved, any competing write/watch must call the guard first
        #: so the flight unfolds (or flushes) before the newcomer
        #: observes lane or memory state (see repro.roce.burst).
        self.burst_guard: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Link accounting helpers
    # ------------------------------------------------------------------
    def _effective(self, num_bytes: int, sequential: bool) -> int:
        if sequential:
            return num_bytes
        # Random access wastes bandwidth on partial bursts (Section 7):
        # model as inflated occupancy.
        return int(num_bytes / self.config.pcie_random_access_factor)

    def _view_of(self, pieces, stable: bool = False) -> PayloadRef:
        """One PayloadRef spanning a chunk's TLB pieces (no copy).

        ``stable`` marks a send buffer the application must not touch
        until completion (the aliasing contract validation mode checks);
        responder-served READ sources stay ``False`` — they may legally
        race local writes."""
        memory = self.memory
        if len(pieces) == 1:
            paddr, n = pieces[0]
            return memory.read_view(paddr, n, stable=stable)
        return PayloadRef.concat(
            memory.read_view(paddr, n, stable=stable)
            for paddr, n in pieces)

    def _burst_duration(self, link: BandwidthLink, piece_lengths,
                        sequential: bool) -> int:
        occupancy = link.occupancy_ps
        total = 0
        for n in piece_lengths:
            total += occupancy(self._effective(n, sequential))
        return total

    def _burst_perword(self, link: BandwidthLink, piece_lengths,
                       sequential: bool):
        """Per-word validation mode: reserve the burst and replay the
        per-word charges from the slot's start — ends at the same
        picosecond as the batched single timeout."""
        env = self.env
        occupancy = link.occupancy_ps
        total = self._burst_duration(link, piece_lengths, sequential)
        start = link.reserve(total)
        link.bytes_transferred += sum(piece_lengths)
        if start > env.now:
            yield env.timeout(start - env.now)
        for n in piece_lengths:
            duration = occupancy(self._effective(n, sequential))
            # One timeout per data-path word; divmod spreads the piece
            # duration so the per-word charges sum to it exactly.
            words = self.config.words(n)
            base, extra = divmod(duration, words)
            for i in range(words):
                yield env.timeout(base + 1 if i < extra else base)

    # ------------------------------------------------------------------
    # Transfers (process helpers: use with ``yield from``)
    # ------------------------------------------------------------------
    def read(self, vaddr: int, length: int, sequential: bool = True):
        """Fetch ``length`` bytes at virtual ``vaddr`` from host memory.

        Returns the bytes (a materialization point: kernels inspect what
        they read).  Costs one PCIe round-trip latency (which overlaps
        between outstanding reads) plus one FIFO burst on the host->card
        lanes; random access patterns pay the reduced effective
        bandwidth of Section 7.
        """
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_read", vaddr=vaddr, length=length)
        pieces = list(self.tlb.split_command(vaddr, length))
        env = self.env
        lengths = [n for _, n in pieces]
        if self.config.per_word_accounting:
            yield env.timeout(self.config.pcie_read_latency)
            yield from self._burst_perword(self.read_link, lengths,
                                           sequential)
        else:
            link = self.read_link
            total = self._burst_duration(link, lengths, sequential)
            start = link.reserve_after(
                env.now + self.config.pcie_read_latency, total)
            link.bytes_transferred += length
            yield env.timeout(start + total - env.now)
        self.reads.add()
        self.bytes_read.add(length)
        self.payload_copy_bytes.add(length)
        data = b"".join(self.memory.read(paddr, n) for paddr, n in pieces) \
            if len(pieces) > 1 else self.memory.read(*pieces[0])
        if self.trace is not None:
            self.trace.end_span(span)
        return data

    def _split_chunks(self, vaddr: int, chunk_lengths):
        chunk_pieces = []
        cursor = vaddr
        for chunk_len in chunk_lengths:
            if chunk_len <= 0:
                raise ValueError("chunk lengths must be positive")
            chunk_pieces.append(
                list(self.tlb.split_command(cursor, chunk_len)))
            cursor += chunk_len
        return chunk_pieces, cursor - vaddr

    def read_plan(self, vaddr: int, chunk_lengths,
                  sequential: bool = True,
                  stable: bool = False) -> FetchPlan:
        """Streaming fetch, zero-copy fast path: synchronously reserve
        one PCIe burst (latency folded into the slot's floor) for all of
        ``chunk_lengths`` and return a :class:`FetchPlan` whose consumer
        receives each chunk (as a view) at exactly the time the old
        chunk-delivery process would have put it — without any per-chunk
        or even per-message events."""
        chunk_pieces, total_bytes = self._split_chunks(vaddr, chunk_lengths)
        occupancy = self.read_link.occupancy_ps
        cum_ends = []
        cum = 0
        for pieces in chunk_pieces:
            for _, n in pieces:
                cum += occupancy(self._effective(n, sequential))
            cum_ends.append(cum)
        link = self.read_link
        start = link.reserve_after(
            self.env.now + self.config.pcie_read_latency, cum)
        link.bytes_transferred += total_bytes
        self.reads.add()
        self.bytes_read.add(total_bytes)
        self.payload_ref_bytes.add(total_bytes)
        if self.trace is not None:
            span = self.trace.begin_span(
                self.name, "dma_stream_read", vaddr=vaddr)
            self.env.timeout(start + cum - self.env.now).callbacks.append(
                lambda _event, span=span:
                    self.trace.end_span(span, length=total_bytes))
        return FetchPlan(self, chunk_pieces, cum_ends, start, stable=stable)

    def read_stream(self, vaddr: int, chunk_lengths, out_stream,
                    sequential: bool = True, stable: bool = False):
        """Streaming fetch: deliver consecutive chunks of
        ``chunk_lengths`` bytes into ``out_stream`` as they cross PCIe.

        Models the XDMA stream interface with descriptor bypass: one
        initial read latency (overlapping between outstanding bursts),
        then the burst holds the host->card lanes and delivers chunks
        cut-through — so a consumer (the TX path, a kernel) overlaps
        fetching with its own processing, and concurrent bursts are
        served strictly in issue order (no head-of-line interleaving).
        Chunks are delivered as :class:`PayloadRef` views.
        """
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_stream_read", vaddr=vaddr)
        chunk_pieces, total_bytes = self._split_chunks(vaddr, chunk_lengths)
        env = self.env
        link = self.read_link
        occupancy = link.occupancy_ps
        durations = [
            sum(occupancy(self._effective(n, sequential)) for _, n in pieces)
            for pieces in chunk_pieces]
        per_word = self.config.per_word_accounting
        if per_word:
            yield env.timeout(self.config.pcie_read_latency)
            start = link.reserve(sum(durations))
            link.bytes_transferred += total_bytes
            if start > env.now:
                yield env.timeout(start - env.now)
        else:
            start = link.reserve_after(
                env.now + self.config.pcie_read_latency, sum(durations))
            link.bytes_transferred += total_bytes
        due = start
        for pieces, duration in zip(chunk_pieces, durations):
            due += duration
            if per_word:
                for _, n in pieces:
                    piece_dur = occupancy(self._effective(n, sequential))
                    words = self.config.words(n)
                    base, extra = divmod(piece_dur, words)
                    for i in range(words):
                        yield env.timeout(base + 1 if i < extra else base)
            elif due > env.now:
                yield env.timeout(due - env.now)
            yield out_stream.put(self._view_of(pieces, stable))
        self.reads.add()
        self.bytes_read.add(total_bytes)
        self.payload_ref_bytes.add(total_bytes)
        if self.trace is not None:
            self.trace.end_span(span, length=total_bytes)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _commit_write(self, vaddr: int, pieces, data, length: int,
                      span) -> None:
        """Land ``data`` in the destination pages (burst completion)."""
        if self.check is not None:
            self.check.on_dma_commit(self, vaddr, pieces, length)
        memory = self.memory
        if isinstance(data, PayloadRef):
            self.payload_ref_bytes.add(length)
            if len(pieces) == 1:
                memory.write_views(pieces[0][0], data.segments())
            else:
                offset = 0
                for paddr, n in pieces:
                    memory.write_views(paddr,
                                       data.slice(offset, n).segments())
                    offset += n
        else:
            self.payload_copy_bytes.add(length)
            view = memoryview(data)
            offset = 0
            for paddr, n in pieces:
                memory.write(paddr, view[offset:offset + n])
                offset += n
        self.writes.add()
        self.bytes_written.add(length)
        if self.trace is not None:
            self.trace.end_span(span)
        self._fire_watches(vaddr, length)

    def write(self, vaddr: int, data, sequential: bool = True):
        """Post ``data`` (bytes or a :class:`PayloadRef`) to virtual
        ``vaddr`` in host memory.

        Completes (in simulation) when the data is globally visible to
        the host: posted-write latency (overlapping between writes) plus
        one FIFO burst on the card->host lanes.  View payloads land in
        the destination pages by scatter-gather slice assignment — no
        staging copy anywhere on the path.
        """
        if self.burst_guard is not None:
            self.burst_guard()
        length = len(data)
        if not length:
            return
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_write", vaddr=vaddr, length=length)
        pieces = list(self.tlb.split_command(vaddr, length))
        env = self.env
        lengths = [n for _, n in pieces]
        if self.config.per_word_accounting:
            yield env.timeout(self.config.pcie_write_latency)
            yield from self._burst_perword(self.write_link, lengths,
                                           sequential)
        else:
            link = self.write_link
            total = self._burst_duration(link, lengths, sequential)
            start = link.reserve_after(
                env.now + self.config.pcie_write_latency, total)
            link.bytes_transferred += length
            yield env.timeout(start + total - env.now)
        self._commit_write(vaddr, pieces, data, length, span)

    def write_posted(self, vaddr: int, data, sequential: bool = True,
                     on_done: Optional[Callable[[], None]] = None) -> None:
        """Fire-and-forget :meth:`write`: reserve the card->host burst
        synchronously and commit the data from a timeout callback at the
        burst's end — the RX hot path's write costs one event and no
        process.  ``on_done`` (if given) runs right after the data lands,
        at the exact time a ``yield from write(...)`` caller would have
        resumed."""
        if self.burst_guard is not None:
            self.burst_guard()
        length = len(data)
        if not length:
            if on_done is not None:
                on_done()
            return
        if self.config.per_word_accounting:
            if on_done is None:
                self.env.process(self.write(vaddr, data, sequential))
            else:
                self.env.process(
                    self._write_then(vaddr, data, sequential, on_done))
            return
        span = None if self.trace is None else self.trace.begin_span(
            self.name, "dma_write", vaddr=vaddr, length=length)
        pieces = list(self.tlb.split_command(vaddr, length))
        env = self.env
        link = self.write_link
        total = self._burst_duration(link, [n for _, n in pieces],
                                     sequential)
        start = link.reserve_after(
            env.now + self.config.pcie_write_latency, total)
        link.bytes_transferred += length

        def _complete(_event, vaddr=vaddr, pieces=pieces, data=data,
                      length=length, span=span, on_done=on_done):
            self._commit_write(vaddr, pieces, data, length, span)
            if on_done is not None:
                on_done()

        env.timeout(start + total - env.now).callbacks.append(_complete)

    def _write_then(self, vaddr: int, data, sequential: bool,
                    on_done: Callable[[], None]):
        yield from self.write(vaddr, data, sequential)
        on_done()

    # ------------------------------------------------------------------
    # Completion watches (host polling support)
    # ------------------------------------------------------------------
    def watch(self, vaddr: int, length: int) -> Event:
        """An event that succeeds when a DMA write touches
        [vaddr, vaddr+length); its value is the completion timestamp."""
        if length <= 0:
            raise ValueError("watch length must be positive")
        if self.burst_guard is not None:
            # Pending folded write-backs must land (in per-packet order,
            # at per-packet times) before a new watch is installed.
            self.burst_guard()
        event = Event(self.env)
        self._watches.append((vaddr, length, event))
        return event

    def _fire_watches(self, vaddr: int, length: int) -> None:
        if not self._watches:
            return
        end = vaddr + length
        remaining = []
        for wstart, wlen, event in self._watches:
            if wstart < end and vaddr < wstart + wlen:
                event.succeed(self.env.now)
            else:
                remaining.append((wstart, wlen, event))
        self._watches = remaining


class MmioPath:
    """Host -> NIC command path (Section 4.3 driver + Controller).

    The host issues one command per memory-mapped AVX2 store; stores are
    serialized on the CPU (bounding the message rate, Section 7.1) and
    become visible to the NIC a posted-write latency later.
    """

    def __init__(self, env: Simulator, issue_cost: int,
                 crossing_latency: int, deliver: Callable[[object], None],
                 jitter_seed: int = 0, name: str = "mmio") -> None:
        self.env = env
        self.issue_cost = issue_cost
        self.crossing_latency = crossing_latency
        self.deliver = deliver
        self.name = name
        self.commands_issued = registry_for(env).counter(
            f"{name}.commands")
        self._rng = random.Random(jitter_seed)
        from ..sim import Resource
        self._cpu_port = Resource(env, capacity=1)

    def post(self, command: object):
        """Process helper: issue one command from the host CPU."""
        yield self._cpu_port.acquire()
        try:
            # Rare TLB-shootdown / cache-miss hiccups give the latency
            # distribution its p99 tail.
            cost = self.issue_cost
            if self._rng.random() < 0.02:
                cost += self.issue_cost * 3
            yield self.env.timeout(cost)
        finally:
            self._cpu_port.release()
        self.commands_issued.add()
        self.env.process(self._cross([command]))

    def post_batch(self, commands):
        """Doorbell batching: several commands written to a command ring
        and announced with a *single* MMIO store — the fix Section 7.1
        anticipates for the host-bound message rate at 100 G.  The batch
        costs one store plus a small per-entry ring-write cost."""
        commands = list(commands)
        if not commands:
            return
        yield self._cpu_port.acquire()
        try:
            # Ring entries are plain (cacheable) stores: ~8x cheaper than
            # an uncached MMIO store each.
            cost = self.issue_cost + (len(commands) - 1) * \
                max(1, self.issue_cost // 8)
            yield self.env.timeout(cost)
        finally:
            self._cpu_port.release()
        self.commands_issued.add(len(commands))
        self.env.process(self._cross(commands))

    def _cross(self, commands):
        yield self.env.timeout(self.crossing_latency)
        for command in commands:
            self.deliver(command)
