"""The StRoM NIC: RoCE v2 stack + DMA engine + TLB + kernels (Figure 1).

One :class:`StromNic` owns:

- the receiving and transmitting data paths of the RoCE stack (Figure 2),
  including PSN state machines, MSN/address tracking for multi-packet
  writes, ACK/NAK generation and go-back-N retransmission;
- the Multi-Queue tracking outstanding RDMA READs;
- the TLB and DMA engine reaching host memory over PCIe;
- the StRoM integration: RPC op-code matching, kernel stream adapters,
  and arbitration of kernel-originated RDMA WRITEs into the TX path.

Timing model: the cable paces frames at line rate; the TX path charges
pipeline-fill plus per-word store-and-forward (the ICRC cost of §7.1);
the RX path charges a fixed parse/PSN-check latency.  DMA operations pay
PCIe latency plus occupancy of the shared PCIe bandwidth link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..check import checker_for
from ..config import NicConfig
from ..core.guard import (ABORT_SENTINEL, InvocationBudget, KernelGuard,
                          ProtectionDomain)
from ..core.kernel import MemCmd, RoceMeta, StromKernel
from ..core.payload import as_bytes
from ..core.registry import KernelRegistry
from ..core.rpc import (RPC_ERROR_NO_KERNEL, RPC_ERROR_QUARANTINED,
                        RpcPreamble, rpc_error_bytes)
from ..memory import PhysicalMemory
from ..net.link import Cable
from ..roce.headers import AETH_NAK_PSN_SEQ_ERROR, Aeth, Bth, Reth
from ..roce.multiqueue import MultiQueue, MultiQueueFullError
from ..roce.opcodes import (
    Opcode,
    is_first,
    is_last,
    is_only,
    is_read_response,
    is_rpc_write,
    is_write,
)
from ..roce.packet import RocePacket, make_ack, make_cnp
from ..roce.packetizer import (
    read_response_packet_count,
    segment_read_response,
    segment_rpc_write,
    segment_write,
)
from ..obs.runtime import registry_for, trace_for
from ..roce.qp import (
    PsnVerdict,
    QpError,
    QueuePairTable,
    psn_add,
    psn_distance,
)
from ..roce.retransmit import RetransmissionTimer
from ..sim import Event, Resource, Simulator, Stream
from .dma import DmaEngine, StreamChunks
from .tlb import Tlb


#: Reserved QPN addressing the local host: kernel output RoCE metadata
#: targeting this QPN is DMA-written to local memory instead of being
#: sent over the network (local StRoM invocation, Sections 3.5/5.2).
LOCAL_QPN = 0


@dataclass
class NicCommand:
    """One host-issued command (a single AVX2 store's worth of params)."""

    kind: str               # 'write' | 'read' | 'rpc' | 'rpc_write'
                            # | 'local_rpc' | 'local_rpc_write'
    qpn: int
    laddr: int = 0          # payload source (write) / data target (read)
    raddr: int = 0          # remote virtual address (write/read)
    length: int = 0
    rpc_op: int = 0         # RPC op-code (rpc / rpc_write)
    params: bytes = b""     # inline RPC parameters (rpc)
    payload_inline: Optional[bytes] = None  # kernel-originated payload
    completion: Optional[Event] = None


@dataclass
class _UnackedEntry:
    """Retransmit-buffer entry: one sent, not-yet-acknowledged packet.

    The burst fast path appends a single *spanning* entry
    (``packet=None``, ``burst`` set) covering a whole folded message;
    any path that needs real packets (retransmission, unfold) calls
    ``burst.ensure_entries()`` first, which expands the span in place.
    """

    first_psn: int
    last_psn: int
    kind: str                # 'write' | 'rpc' | 'rpc_write' | 'read'
    packet: Optional[RocePacket]
    completion: Optional[Event] = None
    is_message_tail: bool = False
    burst: Optional[object] = None


@dataclass
class _ReadContext:
    """Requester-side state for one outstanding READ (Multi-Queue value)."""

    laddr: int
    length: int
    first_psn: int
    packet_count: int
    completion: Optional[Event]
    next_index: int = 0
    bytes_received: int = 0
    span: Optional[object] = None  # open trace span while in flight


class StromNic:
    """One StRoM NIC attached to a host's physical memory and to a cable."""

    def __init__(self, env: Simulator, config: NicConfig,
                 memory: PhysicalMemory, ip: int,
                 name: str = "nic") -> None:
        self.env = env
        self.config = config
        self.memory = memory
        self.ip = ip
        self.name = name

        from ..net.arp import ArpCache
        self.arp = ArpCache(env, ip)
        self.tlb = Tlb(config)
        self.dma = DmaEngine(env, config, memory, self.tlb, name=f"{name}.dma")
        self.qps = QueuePairTable(config.num_queue_pairs,
                                  registry=registry_for(env),
                                  prefix=f"{name}.qps")
        self.multiqueue = MultiQueue(config.num_queue_pairs,
                                     config.max_outstanding_reads)
        self.registry = KernelRegistry()
        self.read_credits = Resource(env, config.max_outstanding_reads)
        self.timer = RetransmissionTimer(
            env, config.retransmit_timeout, self._on_retransmit_timeout,
            name=f"{name}.timer",
            max_retries=config.retransmit_max_retries,
            backoff_cap=config.retransmit_backoff_cap,
            jitter=config.retransmit_jitter,
            on_exhausted=self._on_retry_exhausted)
        #: False while the node hosting this NIC is crashed: every frame
        #: in either direction is dropped until :meth:`power_on`.
        self.powered = True
        #: Congestion-control plane (DCQCN), installed by
        #: :meth:`enable_congestion_control`; None = legacy behavior
        #: (no CNPs, no pacing, bit-identical schedules).
        self.cc = None

        # Per-QP completions waiting for ACKs: qpn -> ordered entries.
        self._rpc_write_target: Dict[int, Optional[StromKernel]] = {}
        self._nak_pending: Dict[int, bool] = {}
        # qpn -> pending Event while a go-back-N burst is in flight.
        # Only consulted when the CC plane is on: pacing stretches a
        # retransmission over hundreds of microseconds, long enough for
        # concurrently emitted *new* packets to interleave and keep the
        # responder permanently out of order (hardware instead rewinds
        # the send pointer, which this gate approximates).
        self._rtx_busy: Dict[int, Event] = {}
        self._tx_gate: Event = Event(env)
        self._tx_gate.succeed()
        self._fetch_gate: Event = Event(env)
        self._fetch_gate.succeed()
        self._resp_gate: Event = Event(env)
        self._resp_gate.succeed()

        self._cable: Optional[Cable] = None
        self._cable_side: Optional[str] = None

        #: Folded burst flights this NIC participates in (sender or
        #: receiver); any frame arriving while one is active unfolds it
        #: (see repro.roce.burst).
        self._burst_flights: List = []

        # Fixed pipeline delays, precomputed once (config is immutable):
        # the TX/RX hot paths run per packet.
        self._tx_delay = config.cycles(
            config.tx_pipeline_cycles + config.strom_arbitration_cycles)
        self._rx_delay = config.cycles(config.rx_pipeline_cycles)
        self._arb_delay = config.cycles(config.strom_arbitration_cycles)

        # Statistics
        from .controller import Controller
        self.controller = Controller(self)
        metrics = registry_for(env)
        self.metrics = metrics
        #: Optional flight recorder (see repro.sim.trace.EventTrace);
        #: populated while an obs session is active, else None.
        self.trace = trace_for(env)
        #: Optional invariant monitors (see repro.check); None unless
        #: installed — every hook below guards on that.
        self.check = checker_for(env)
        if self.check is not None:
            self.check.register_timer_guard(
                self.timer.name,
                lambda qpn: qpn in self.qps
                and self.qps.get(qpn).in_error)

        self.packets_sent = metrics.counter(f"{name}.pkts_tx")
        self.packets_received = metrics.counter(f"{name}.pkts_rx")
        self.packets_dropped = metrics.counter(f"{name}.pkts_dropped")
        self.acks_sent = metrics.counter(f"{name}.acks_tx")
        self.naks_sent = metrics.counter(f"{name}.naks_tx")
        self.retransmitted = metrics.counter(f"{name}.retransmits")
        self.duplicates = metrics.counter(f"{name}.duplicates")
        self.payload_bytes_sent = metrics.counter(f"{name}.payload_tx")
        self.payload_bytes_received = metrics.counter(f"{name}.payload_rx")
        #: QPs transitioned to the error state (retry budget exhausted).
        self.qp_errors = metrics.counter(f"{name}.qp_errors")
        #: Commands rejected because their QP was already in error.
        self.commands_rejected = metrics.counter(f"{name}.cmds_rejected")
        #: Frames discarded in either direction while powered off.
        self.crash_drops = metrics.counter(f"{name}.crash_drops")
        #: Sampled time series of in-flight READs (Multi-Queue load).
        self._outstanding_reads = metrics.gauge(
            f"{name}.outstanding_reads")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, cable: Cable, side: str) -> None:
        """Connect this NIC to one side ('a' or 'b') of a cable."""
        if side not in ("a", "b"):
            raise ValueError("side must be 'a' or 'b'")
        self._cable = cable
        self._cable_side = side
        # Frames arrive via the receiver hook (no rx stream, no per-NIC
        # rx loop process, no per-frame stream wake); the RX parse
        # pipeline delay is folded into the cable's arrival callback.
        cable.set_receiver(side, self._rx_arrive, self._rx_delay)

    def create_queue_pair(self, qpn: int, dest_qpn: int,
                          dest_ip: int) -> None:
        """Install one queue pair (driver/Controller path)."""
        self.qps.create(qpn, dest_qpn, dest_ip)

    def enable_congestion_control(self, config=None) -> None:
        """Turn on the DCQCN plane for this NIC: CE-marked arrivals
        generate CNPs, received CNPs throttle the addressed QP, and
        every outbound data packet passes the per-QP pacer.  Pair with
        an ``ecn`` entry in the switch config (or use
        :meth:`repro.cluster.topology.Cluster.enable_congestion_control`
        to do both ends at once)."""
        self._unfold_bursts()
        from ..cc.plane import CcConfig, NicCongestionControl
        if config is None:
            config = CcConfig()
        self.cc = NicCongestionControl(
            self.env, config, self.name, self.config.line_rate_bps,
            self._send_cnp, self.metrics)

    def deploy_kernel(self, rpc_opcode: int, kernel: StromKernel,
                      sequential_dma: bool = True,
                      protection: Optional[ProtectionDomain] = None,
                      budget: Optional[InvocationBudget] = None,
                      quarantine_threshold: int = 3) -> None:
        """Deploy a StRoM kernel and start its stream adapters.

        ``protection`` / ``budget`` harden the deployment: DMA is
        confined to the protection domain, invocations are bounded by
        the budget, and ``quarantine_threshold`` consecutive aborts
        quarantine the kernel (further RPCs answered with
        ``RPC_ERROR_QUARANTINED``).  Both default to off, leaving the
        kernel guard-free and its schedules untouched."""
        kernel.sequential_dma = sequential_dma
        kernel.trace_source = f"{self.name}.kernel.{kernel.name}"
        if protection is not None or budget is not None:
            kernel.guard = KernelGuard(
                protection=protection, budget=budget,
                quarantine_threshold=quarantine_threshold)
        self.registry.deploy(rpc_opcode, kernel)
        self.env.process(self._kernel_dma_adapter(kernel))
        self.env.process(self._kernel_tx_adapter(kernel))

    # ------------------------------------------------------------------
    # Power state (whole-node crash/restart fault injection)
    # ------------------------------------------------------------------
    def power_off(self) -> None:
        """Crash the node: every frame in either direction is dropped.

        QP and memory state is preserved (a *warm* restart model): after
        :meth:`power_on` the peers' retransmissions find the responder
        state where it was, so in-flight operations can still complete.
        """
        if not self.powered:
            return
        self._unfold_bursts()
        self.powered = False
        if self.trace is not None:
            self.trace.record(self.name, "power_off")

    def power_on(self) -> None:
        """Restore a crashed node."""
        if self.powered:
            return
        self.powered = True
        if self.trace is not None:
            self.trace.record(self.name, "power_on")

    # ------------------------------------------------------------------
    # QP error state (retry budget exhausted)
    # ------------------------------------------------------------------
    def _on_retry_exhausted(self, qpn: int) -> None:
        self._fail_queue_pair(qpn, "retry budget exhausted")

    def _fail_queue_pair(self, qpn: int, reason: str) -> None:
        """Transition ``qpn`` to the error state: stop retransmitting and
        complete every outstanding work request with error status."""
        qp = self.qps.get(qpn)
        if qp.in_error:
            return
        qp.fail(reason)
        self.qp_errors.add()
        if self.trace is not None:
            self.trace.record(self.name, "qp_error", qpn=qpn, reason=reason)
        self.timer.disarm(qpn)
        error = QpError(qpn, reason)
        for entry in qp.requester.unacked:
            if entry.completion is not None \
                    and not entry.completion.triggered:
                entry.completion.succeed(error)
        qp.requester.unacked.clear()
        while not self.multiqueue.is_empty(qpn):
            context = self.multiqueue.pop(qpn)
            if self.trace is not None and context.span is not None:
                self.trace.end_span(context.span)
                context.span = None
            if context.completion is not None \
                    and not context.completion.triggered:
                context.completion.succeed(error)
            self.read_credits.release()
        if self.check is not None:
            self.check.on_qp_error(self, qpn, reason)

    # ------------------------------------------------------------------
    # Host command entry point (called by the MMIO path)
    # ------------------------------------------------------------------
    def submit(self, command: NicCommand) -> None:
        """Accept one command from the Controller."""
        if command.kind in ("write", "read", "rpc", "rpc_write") \
                and command.qpn in self.qps \
                and self.qps.get(command.qpn).in_error:
            # Error-state QPs accept no new work: complete immediately
            # with error status instead of silently blackholing.
            self.commands_rejected.add()
            if command.completion is not None:
                command.completion.succeed(
                    QpError(command.qpn,
                            self.qps.get(command.qpn).error_reason))
            return
        if command.kind == "read":
            self.env.process(self._post_read(command))
        elif command.kind in ("write", "rpc", "rpc_write"):
            self._post_send(command)
        elif command.kind == "local_rpc":
            self.env.process(self._local_rpc(command))
        elif command.kind == "local_rpc_write":
            self.env.process(self._local_rpc_write(command))
        else:
            raise ValueError(f"unknown command kind {command.kind!r}")

    # ------------------------------------------------------------------
    # Local StRoM invocation (Sections 3.5 / 5.2)
    # ------------------------------------------------------------------
    def _local_rpc(self, command: NicCommand):
        """Invoke a kernel on this NIC directly: the Controller feeds the
        QPN and parameters into the kernel streams without a network hop.
        ``command.qpn`` selects where kernel *output* goes: LOCAL_QPN for
        local memory, or a connected QP to use the kernel as a send-side
        processor."""
        kernel, status = self.registry.resolve(command.rpc_op)
        if kernel is None:
            raise KeyError(
                f"no kernel deployed for RPC op-code {command.rpc_op:#x}")
        yield self.env.timeout(self._arb_delay)
        if status == "quarantined":
            # Answer locally without feeding the quarantined kernel.
            try:
                preamble = RpcPreamble.unpack(command.params)
            except ValueError:
                self.commands_rejected.add()
            else:
                yield from self.dma.write(
                    preamble.response_vaddr,
                    rpc_error_bytes(RPC_ERROR_QUARANTINED))
            if command.completion is not None:
                command.completion.succeed(self.env.now)
            return
        yield kernel.streams.qpn_in.put(command.qpn)
        yield kernel.streams.param_in.put(command.params)
        if command.completion is not None:
            command.completion.succeed(self.env.now)

    def _local_rpc_write(self, command: NicCommand):
        """Stream a local buffer through a kernel (send kernel): the
        payload is fetched over PCIe and fed to roceDataIn in data-path
        chunks, exactly as network RPC WRITE payload would arrive."""
        kernel, status = self.registry.resolve(command.rpc_op)
        if kernel is None:
            raise KeyError(
                f"no kernel deployed for RPC op-code {command.rpc_op:#x}")
        if status == "quarantined":
            # The paired RPC_PARAMS already answered with the error;
            # do not feed payload into a quarantined kernel.
            self.commands_rejected.add()
            if command.completion is not None:
                command.completion.succeed(self.env.now)
            return
        segments = segment_rpc_write(command.length)
        fetch_queue = Stream(self.env)
        self.env.process(self.dma.read_stream(
            command.laddr, [seg.length for seg in segments], fetch_queue,
            stable=True))
        for i, seg in enumerate(segments):
            chunk = yield fetch_queue.get()
            tail = i == len(segments) - 1
            yield self.env.timeout(self._arb_delay)
            # Kernels inspect their input: materialize the fetched view.
            yield kernel.streams.roce_data_in.put(
                (command.qpn, as_bytes(chunk), tail))
        if command.completion is not None:
            command.completion.succeed(self.env.now)

    # ------------------------------------------------------------------
    # TX data path
    # ------------------------------------------------------------------
    def _post_send(self, command: NicCommand) -> None:
        qp = self.qps.get(command.qpn)
        if command.kind == "write":
            segments = segment_write(command.length)
        elif command.kind == "rpc":
            segments = None  # single RPC_PARAMS packet
        else:
            segments = segment_rpc_write(command.length)
        count = 1 if segments is None else len(segments)
        first_psn = qp.requester.allocate_psns(count)
        fetch = None
        if command.payload_inline is None \
                and command.kind in ("write", "rpc_write") \
                and command.length > 0:
            # Streaming payload fetch.  Bursts are served in issue order
            # by the PCIe host->card lanes (FIFO inside the DMA engine),
            # while read latencies overlap between outstanding bursts.
            lengths = [seg.length for seg in segments if seg.length > 0]
            if self.config.per_word_accounting:
                # Validation mode keeps the explicit chunk-delivery
                # process (per-word PCIe charges).
                fetch_queue = Stream(self.env)
                self.env.process(self.dma.read_stream(
                    command.laddr, lengths, fetch_queue, stable=True))
                fetch = StreamChunks(fetch_queue)
            else:
                # Fast path: chunk arrival times are arithmetic — zero
                # scheduler events per fetched packet in steady state.
                # stable=True: send buffers are contract-protected.
                fetch = self.dma.read_plan(command.laddr, lengths,
                                           stable=True)
        prev_gate, gate = self._tx_gate, Event(self.env)
        self._tx_gate = gate
        self.env.process(
            self._send_message(command, qp, segments, first_psn,
                               prev_gate, gate, fetch))

    def _send_message(self, command, qp, segments, first_psn,
                      prev_gate, gate, fetch=None):
        """Emit the message's packets in order behind all previously
        posted messages.  Memory-sourced payloads are fetched over PCIe
        as a *stream* overlapping transmission (descriptor bypass)."""
        payload = command.payload_inline
        yield prev_gate
        from ..roce import burst
        # New traffic claims the fabric: any pending fold must hand
        # back to the per-packet machinery *before* this message
        # creates its first event (see burst.unfold_pending).
        burst.unfold_pending(self.env)
        if command.kind == "write" and payload is None \
                and fetch is not None:
            if burst.try_fold_write(self, command, qp, segments,
                                    first_psn, fetch, gate):
                return
        span = None if self.trace is None else self.trace.begin_span(
            f"{self.name}.qp{qp.qpn}", "tx_message", kind=command.kind,
            length=command.length)

        if command.kind == "rpc":
            reth = Reth(vaddr=command.rpc_op, rkey=0,
                        dma_length=len(command.params))
            bth = Bth(opcode=Opcode.RPC_PARAMS, dest_qp=qp.dest_qpn,
                      psn=first_psn, ack_request=True)
            plan = [(RocePacket(src_ip=self.ip, dst_ip=qp.dest_ip,
                                bth=bth, reth=reth,
                                payload=command.params), True)]
            plan_iter = iter(plan)
            segments = [None]

        for i, seg in enumerate(segments):
            if command.kind == "rpc":
                packet, tail = next(plan_iter)
            else:
                if fetch is not None and seg.length > 0:
                    chunk = yield from fetch.next_chunk()
                elif payload is not None:
                    chunk = payload[seg.offset:seg.offset + seg.length]
                else:
                    chunk = b""
                reth = None
                if seg.carries_reth:
                    if command.kind == "rpc_write":
                        reth = Reth(vaddr=command.rpc_op, rkey=0,
                                    dma_length=command.length)
                    else:
                        reth = Reth(vaddr=command.raddr, rkey=0,
                                    dma_length=command.length)
                tail = is_last(seg.opcode) or is_only(seg.opcode)
                bth = Bth(opcode=seg.opcode, dest_qp=qp.dest_qpn,
                          psn=psn_add(first_psn, i), ack_request=tail)
                packet = RocePacket(src_ip=self.ip, dst_ip=qp.dest_ip,
                                    bth=bth, reth=reth, payload=chunk)
            entry = _UnackedEntry(
                first_psn=packet.bth.psn, last_psn=packet.bth.psn,
                kind=command.kind, packet=packet,
                completion=command.completion if tail else None,
                is_message_tail=tail)
            qp.requester.unacked.append(entry)
            self.payload_bytes_sent.add(len(packet.payload))
            if self.cc is not None:
                busy = self._rtx_busy.get(qp.qpn)
                if busy is not None and not busy.triggered:
                    # Go-back-N in flight: hold new packets back until
                    # the rewound window has been resent.
                    yield busy
                yield from self.cc.pace(qp.qpn, packet.wire_bytes)
            # II=1 store-and-forward through the TX pipeline (ICRC).
            yield from self.config.streaming_charge(
                self.env, packet.l3_bytes)
            self._tx_deliver(packet, qp)
            if self.cc is not None and not qp.in_error \
                    and self.cc.is_throttled(qp.qpn):
                # Paced transmission is forward progress: a throttled
                # message can legally outlast the retransmission
                # timeout, so push the deadline out per packet sent
                # (DCQCN deployments likewise keep the QP timer well
                # above the pacer's inter-packet gaps).
                self.timer.arm(qp.qpn)
        if self.trace is not None:
            self.trace.end_span(span)
        if not qp.in_error:
            self.timer.arm(qp.qpn)
        gate.succeed()

    def _post_read(self, command: NicCommand):
        yield self.read_credits.acquire()
        if self.metrics.sampling_enabled:
            self._outstanding_reads.sample(self.env.now,
                                           self.read_credits.in_use)
        qp = self.qps.get(command.qpn)
        count = read_response_packet_count(command.length)
        first_psn = qp.requester.allocate_psns(count)
        context = _ReadContext(laddr=command.laddr, length=command.length,
                               first_psn=first_psn, packet_count=count,
                               completion=command.completion)
        if self.trace is not None:
            context.span = self.trace.begin_span(
                f"{self.name}.qp{qp.qpn}", "read", length=command.length,
                psn=first_psn)
        try:
            self.multiqueue.push(qp.qpn, context)
        except MultiQueueFullError:
            # read_credits should prevent this; treat as fatal config error.
            raise
        reth = Reth(vaddr=command.raddr, rkey=0, dma_length=command.length)
        bth = Bth(opcode=Opcode.READ_REQUEST, dest_qp=qp.dest_qpn,
                  psn=first_psn, ack_request=True)
        packet = RocePacket(src_ip=self.ip, dst_ip=qp.dest_ip,
                            bth=bth, reth=reth)
        entry = _UnackedEntry(first_psn=first_psn,
                              last_psn=psn_add(first_psn, count - 1),
                              kind="read", packet=packet)
        prev_gate, gate = self._tx_gate, Event(self.env)
        self._tx_gate = gate
        yield prev_gate
        from ..roce import burst
        burst.unfold_pending(self.env)
        qp.requester.unacked.append(entry)
        if self.cc is not None:
            yield from self.cc.pace(qp.qpn, packet.wire_bytes)
        yield from self.config.streaming_charge(self.env, packet.l3_bytes)
        self._tx_deliver(packet, qp)
        if not qp.in_error:
            self.timer.arm(qp.qpn)
        gate.succeed()

    def _tx_deliver(self, packet: RocePacket, qp=None) -> None:
        """Hand the frame to the cable.  The fixed TX pipeline latency
        is folded into the wire reservation's floor (``ready``), so
        pipeline + serialization + propagation + the peer's RX parse
        cost a single scheduler event on the fault-free path."""
        if self.check is not None:
            # Before the powered check: a crashed NIC drops the frame,
            # but its PSN was already consumed from the QP's sequence —
            # the monitors track allocation, not delivery.
            self.check.on_tx(self, packet, qp)
        if not self.powered:
            self.crash_drops.add()
            return
        self.packets_sent.add()
        if self.trace is not None:
            self.trace.record(self.name, "tx",
                              opcode=packet.bth.opcode.name,
                              psn=packet.bth.psn,
                              payload=len(packet.payload))
        self._cable.send(self._cable_side, packet,
                         ready=self.env.now + self._tx_delay)

    # ------------------------------------------------------------------
    # RX data path
    # ------------------------------------------------------------------
    def _rx_arrive(self, packet: RocePacket) -> None:
        """Cable receiver hook (RX pipeline delay already charged)."""
        if self._burst_flights:
            # A per-packet frame reached a NIC participating in a folded
            # burst: the analytic schedule no longer owns this NIC's
            # arrival order — unfold before dispatching.
            self._unfold_bursts()
        if not self.powered:
            self.crash_drops.add()
            return
        self._rx_dispatch(packet)

    def _unfold_bursts(self) -> None:
        """Unfold every burst flight this NIC participates in."""
        while self._burst_flights:
            flight = self._burst_flights[-1]
            flight.unfold()
            if self._burst_flights and self._burst_flights[-1] is flight:
                # unfold() deregisters itself; this is belt-and-braces
                # against a stale entry wedging the loop.
                self._burst_flights.pop()

    def _rx_dispatch(self, packet: RocePacket) -> None:
        """Classify one received frame.  Runs synchronously so PSN/MSN
        state updates, ACK emission and gate chaining happen strictly in
        arrival order; only tails that genuinely wait (READ serving,
        kernel stream feeds) continue as processes."""
        self.packets_received.add()
        if self.trace is not None:
            self.trace.record(self.name, "rx",
                              opcode=packet.bth.opcode.name,
                              psn=packet.bth.psn,
                              payload=len(packet.payload),
                              corrupted=packet.corrupted)
        if packet.corrupted:
            # ICRC validation fails -> Packet Dropper discards silently;
            # the requester's retransmission timer recovers.
            self.packets_dropped.add()
            return
        if packet.bth.dest_qp not in self.qps:
            self.packets_dropped.add()
            return
        qp = self.qps.get(packet.bth.dest_qp)
        if self.check is not None:
            self.check.on_rx(self, qp, packet)
        opcode = packet.bth.opcode
        if opcode == Opcode.CNP:
            # Congestion notification: throttle the addressed QP and
            # stop — a CNP carries no PSN meaning and is never ACKed.
            if self.cc is not None:
                self.cc.on_cnp(packet.bth.dest_qp)
            else:
                self.packets_dropped.add()
            return
        if packet.ecn_ce and self.cc is not None:
            self.cc.note_ce(qp)
        if opcode == Opcode.ACKNOWLEDGE:
            self._handle_ack(qp, packet)
        elif is_read_response(opcode):
            self._handle_read_response(qp, packet)
        else:
            self._handle_request(qp, packet)

    # ----------------------- responder side ---------------------------
    def _handle_request(self, qp, packet: RocePacket) -> None:
        responder = qp.responder
        verdict = responder.classify(packet.bth.psn)
        if verdict is PsnVerdict.OUT_OF_ORDER:
            if not self._nak_pending.get(qp.qpn):
                self._nak_pending[qp.qpn] = True
                self._send_ack(qp, responder.expected_psn, responder.msn,
                               syndrome=AETH_NAK_PSN_SEQ_ERROR)
            self.packets_dropped.add()
            return
        if verdict is PsnVerdict.DUPLICATE:
            self.duplicates.add()
            opcode = packet.bth.opcode
            if opcode == Opcode.READ_REQUEST:
                # Duplicate reads are re-executed (idempotent).
                self.env.process(self._responder_read(qp, packet))
            else:
                self._send_ack(qp, packet.bth.psn, responder.msn)
            return

        self._nak_pending[qp.qpn] = False
        opcode = packet.bth.opcode
        if is_write(opcode):
            self._responder_write(qp, packet)
        elif opcode == Opcode.READ_REQUEST:
            count = read_response_packet_count(packet.reth.dma_length)
            responder.expected_psn = psn_add(packet.bth.psn, count)
            responder.msn = (responder.msn + 1) & 0xFFFFFF
            self.env.process(self._responder_read(qp, packet))
        elif opcode == Opcode.RPC_PARAMS:
            responder.expected_psn = psn_add(packet.bth.psn, 1)
            responder.msn = (responder.msn + 1) & 0xFFFFFF
            self._send_ack(qp, packet.bth.psn, responder.msn)
            self.env.process(self._dispatch_rpc(qp, packet))
        elif is_rpc_write(opcode):
            self._responder_rpc_write(qp, packet)
        else:
            self.packets_dropped.add()

    def _responder_write(self, qp, packet: RocePacket) -> None:
        responder = qp.responder
        responder.expected_psn = psn_add(packet.bth.psn, 1)
        opcode = packet.bth.opcode
        if is_first(opcode) or is_only(opcode):
            responder.write_cursor = packet.reth.vaddr
        cursor = responder.write_cursor
        if cursor is None:
            self.packets_dropped.add()
            return
        responder.write_cursor = cursor + len(packet.payload)
        self.payload_bytes_received.add(len(packet.payload))
        tail = is_last(opcode) or is_only(opcode)
        if tail:
            responder.msn = (responder.msn + 1) & 0xFFFFFF
            responder.write_cursor = None
            self._send_ack(qp, packet.bth.psn, responder.msn)
        if packet.payload:
            # Posted: the ACK above never waited for the write anyway.
            self.dma.write_posted(cursor, packet.payload)

    def _responder_read(self, qp, packet: RocePacket):
        """Serve one READ: stream the payload from host memory over PCIe
        while emitting response packets (fetch overlaps transmit)."""
        from ..roce.opcodes import carries_aeth
        prev_gate, gate = self._resp_gate, Event(self.env)
        self._resp_gate = gate
        segments = segment_read_response(packet.reth.dma_length)
        lengths = [seg.length for seg in segments]
        if self.config.per_word_accounting:
            fetch_queue = Stream(self.env)
            self.env.process(self.dma.read_stream(
                packet.reth.vaddr, lengths, fetch_queue))
            fetch = StreamChunks(fetch_queue)
        else:
            # Zero-event fetch; stable stays False — READ-served memory
            # may legally race local writes (see repro.core.payload).
            fetch = self.dma.read_plan(packet.reth.vaddr, lengths)
        yield prev_gate
        from ..roce import burst
        burst.unfold_pending(self.env)
        if not self.config.per_word_accounting:
            if burst.try_fold_read(self, qp, packet, segments, fetch,
                                   gate):
                return
        span = None if self.trace is None else self.trace.begin_span(
            f"{self.name}.qp{qp.qpn}", "serve_read",
            length=packet.reth.dma_length, psn=packet.bth.psn)
        for i, seg in enumerate(segments):
            chunk = yield from fetch.next_chunk()
            aeth = None
            if carries_aeth(seg.opcode):
                aeth = Aeth(syndrome=0, msn=qp.responder.msn)
            bth = Bth(opcode=seg.opcode, dest_qp=qp.dest_qpn,
                      psn=psn_add(packet.bth.psn, i))
            response = RocePacket(src_ip=self.ip, dst_ip=qp.dest_ip,
                                  bth=bth, aeth=aeth, payload=chunk)
            if self.cc is not None:
                yield from self.cc.pace(qp.qpn, response.wire_bytes)
            yield from self.config.streaming_charge(
                self.env, response.l3_bytes)
            self._tx_deliver(response)
        if self.trace is not None:
            self.trace.end_span(span)
        gate.succeed()

    def _responder_rpc_write(self, qp, packet: RocePacket) -> None:
        responder = qp.responder
        responder.expected_psn = psn_add(packet.bth.psn, 1)
        opcode = packet.bth.opcode
        if is_first(opcode) or is_only(opcode):
            kernel, status = self.registry.resolve(packet.reth.vaddr)
            if status != "match":
                kernel = None  # missed or quarantined: drop the stream
            self._rpc_write_target[qp.qpn] = kernel
        kernel = self._rpc_write_target.get(qp.qpn)
        tail = is_last(opcode) or is_only(opcode)
        if tail:
            responder.msn = (responder.msn + 1) & 0xFFFFFF
            self._send_ack(qp, packet.bth.psn, responder.msn)
        self.payload_bytes_received.add(len(packet.payload))
        if kernel is None:
            self.packets_dropped.add()
            return
        self.env.process(
            self._rpc_write_feed(kernel, qp.qpn, packet.payload, tail))

    def _rpc_write_feed(self, kernel, qpn: int, payload, tail: bool):
        # Arbitration into the kernel adds a few cycles (Section 5.1).
        yield self.env.timeout(self._arb_delay)
        if kernel.guard is not None and kernel.guard.quarantined:
            # Quarantined while the payload was in flight: drop it
            # rather than grow an unconsumed input stream forever.
            self.packets_dropped.add()
            return
        # Kernels inspect their input: materialize forwarded views here.
        yield kernel.streams.roce_data_in.put((qpn, as_bytes(payload), tail))

    def _dispatch_rpc(self, qp, packet: RocePacket):
        rpc_opcode = packet.reth.vaddr
        kernel, status = self.registry.resolve(rpc_opcode)
        if status == "match":
            yield self.env.timeout(self._arb_delay)
            yield kernel.streams.qpn_in.put(qp.qpn)
            yield kernel.streams.param_in.put(as_bytes(packet.payload))
            return
        if status == "miss" and self.registry.fallback is not None:
            self.registry.fallbacks.add()
            self.env.process(self.registry.fallback(
                qp.qpn, rpc_opcode, as_bytes(packet.payload)))
            return
        # No kernel / no fallback / quarantined kernel: write an error
        # code back to the requesting node (Section 5.1).
        error_code = RPC_ERROR_QUARANTINED if status == "quarantined" \
            else RPC_ERROR_NO_KERNEL
        try:
            preamble = RpcPreamble.unpack(as_bytes(packet.payload))
        except ValueError:
            self.packets_dropped.add()
            return
        error = rpc_error_bytes(error_code)
        self._post_send(NicCommand(
            kind="write", qpn=qp.qpn, raddr=preamble.response_vaddr,
            length=len(error), payload_inline=error))

    def _send_ack(self, qp, psn: int, msn: int, syndrome: int = 0) -> None:
        ack = make_ack(src_ip=self.ip, dst_ip=qp.dest_ip,
                       dest_qp=qp.dest_qpn, psn=psn, msn=msn,
                       syndrome=syndrome)
        if syndrome == AETH_NAK_PSN_SEQ_ERROR:
            self.naks_sent.add()
            if self.trace is not None:
                self.trace.record(self.name, "nak", psn=psn, msn=msn)
        else:
            self.acks_sent.add()
            if self.trace is not None:
                self.trace.record(self.name, "ack", psn=psn, msn=msn)
        self._tx_deliver(ack)

    def _send_cnp(self, qp) -> None:
        """Emit one CNP toward ``qp``'s peer (the congested sender).
        Unpaced and ahead of any queued data: congestion feedback must
        not itself be throttled by the congestion it reports."""
        cnp = make_cnp(src_ip=self.ip, dst_ip=qp.dest_ip,
                       dest_qp=qp.dest_qpn)
        if self.trace is not None:
            self.trace.record(self.name, "cnp", qpn=qp.qpn)
        self._tx_deliver(cnp)

    # ----------------------- requester side ---------------------------
    def _handle_ack(self, qp, packet: RocePacket) -> None:
        aeth = packet.aeth
        requester = qp.requester
        if aeth.is_nak:
            self._go_back_n(qp, packet.bth.psn)
            return
        acked_psn = packet.bth.psn
        progressed = False
        while requester.unacked:
            entry = requester.unacked[0]
            if psn_distance(entry.last_psn, acked_psn) > (1 << 23):
                break  # entry is beyond the acked PSN
            if entry.kind == "read":
                break  # reads complete via their responses only
            requester.unacked.pop(0)
            requester.oldest_unacked_psn = psn_add(entry.last_psn, 1)
            progressed = True
            if entry.completion is not None and not entry.completion.triggered:
                entry.completion.succeed(self.env.now)
        if progressed:
            self.timer.note_progress(qp.qpn)
        if requester.unacked:
            self.timer.arm(qp.qpn)
        else:
            self.timer.disarm(qp.qpn)

    def _handle_read_response(self, qp, packet: RocePacket) -> None:
        if self.multiqueue.is_empty(qp.qpn):
            self.packets_dropped.add()
            return
        context: _ReadContext = self.multiqueue.peek(qp.qpn)
        expected = psn_add(context.first_psn, context.next_index)
        if packet.bth.psn != expected:
            self.packets_dropped.add()
            return
        context.next_index += 1
        offset = context.bytes_received
        context.bytes_received += len(packet.payload)
        self.payload_bytes_received.add(len(packet.payload))
        self.timer.note_progress(qp.qpn)
        final = context.next_index >= context.packet_count
        if final:
            self.multiqueue.pop(qp.qpn)
            self._release_read_entry(qp, context)
            if self.trace is not None and context.span is not None:
                self.trace.end_span(context.span)
                context.span = None
        if packet.payload:
            # Posted write-back; the READ completes (and its credit
            # frees) only once the final packet's data has landed —
            # exactly when the old blocking write resumed.
            on_done = None
            if final:
                on_done = lambda qp=qp, context=context: \
                    self._finish_read(qp, context)
            self.dma.write_posted(context.laddr + offset, packet.payload,
                                  on_done=on_done)
        elif final:
            self._finish_read(qp, context)

    def _finish_read(self, qp, context: _ReadContext) -> None:
        if context.completion is not None \
                and not context.completion.triggered:
            context.completion.succeed(self.env.now)
        self.read_credits.release()
        if self.metrics.sampling_enabled:
            self._outstanding_reads.sample(self.env.now,
                                           self.read_credits.in_use)
        if qp.requester.unacked:
            self.timer.arm(qp.qpn)
        else:
            self.timer.disarm(qp.qpn)

    def _release_read_entry(self, qp, context: _ReadContext) -> None:
        requester = qp.requester
        for i, entry in enumerate(requester.unacked):
            if entry.kind == "read" and entry.first_psn == context.first_psn:
                requester.unacked.pop(i)
                return

    # ----------------------- reliability -------------------------------
    def _go_back_n(self, qp, from_psn: int) -> None:
        """NAK handling: retransmit everything from ``from_psn`` on."""
        self.env.process(self._retransmit_from(qp, from_psn))

    def _on_retransmit_timeout(self, qpn: int):
        qp = self.qps.get(qpn)
        if not qp.requester.unacked:
            return None
        return self._retransmit_from(qp, qp.requester.unacked[0].first_psn)

    def _retransmit_from(self, qp, from_psn: int):
        busy = None
        if self.cc is not None:
            # Serialize bursts: a second NAK/timeout while one paced
            # go-back-N is still draining must wait, not interleave.
            while True:
                busy = self._rtx_busy.get(qp.qpn)
                if busy is None or busy.triggered:
                    break
                yield busy
            busy = Event(self.env)
            self._rtx_busy[qp.qpn] = busy
        try:
            yield from self._retransmit_entries(qp, from_psn)
        finally:
            if busy is not None:
                busy.succeed()

    def _retransmit_entries(self, qp, from_psn: int):
        from ..roce import burst
        burst.unfold_pending(self.env)
        # A folded burst leaves one spanning entry with no packet:
        # materialize the real per-packet entries before retransmitting.
        for entry in list(qp.requester.unacked):
            if entry.packet is None and entry.burst is not None:
                entry.burst.ensure_entries()
        entries = [e for e in qp.requester.unacked
                   if psn_distance(from_psn, e.first_psn) < (1 << 23)
                   or e.first_psn == from_psn]
        if not entries:
            return
        qp_retransmits = self.metrics.counter(
            f"{self.name}.qp{qp.qpn}.retransmits")
        for entry in entries:
            if entry.kind == "read":
                # Reset the response context; re-execution is idempotent.
                if not self.multiqueue.is_empty(qp.qpn):
                    context = self.multiqueue.peek(qp.qpn)
                    if context.first_psn == entry.first_psn:
                        context.next_index = 0
                        context.bytes_received = 0
            self.retransmitted.add()
            qp_retransmits.add()
            if self.trace is not None:
                self.trace.record(self.name, "retransmit",
                                  psn=entry.first_psn, kind=entry.kind)
            if self.cc is not None:
                yield from self.cc.pace(qp.qpn, entry.packet.wire_bytes)
            yield from self.config.streaming_charge(
                self.env, entry.packet.l3_bytes)
            self._tx_deliver(entry.packet, qp)
            if self.cc is not None and not qp.in_error \
                    and self.cc.is_throttled(qp.qpn):
                # As in _send_message: paced retransmission in flight
                # must not itself trip another timeout.
                self.timer.arm(qp.qpn)
        if not qp.in_error:
            # A paced burst can outlive the retry budget: the timer may
            # have fired mid-burst and moved the QP to the error state,
            # and re-arming here would resurrect a dead QP's timer.
            self.timer.arm(qp.qpn)

    # ------------------------------------------------------------------
    # Kernel stream adapters (Figure 4 wiring)
    # ------------------------------------------------------------------
    def _kernel_dma_adapter(self, kernel: StromKernel):
        """Serve the kernel's DMA command/data streams.

        For hardened deployments every command is validated against the
        kernel's protection domain *here*, before it reaches the DMA
        engine — the kernel-side checks in the issue helpers are the
        fast path, this adapter is the authoritative gate.  A violating
        command is discarded (never forwarded to :mod:`repro.nic.dma`)
        and the invocation is marked doomed; a blocked kernel is woken
        with the abort sentinel."""
        sequential = getattr(kernel, "sequential_dma", True)
        while True:
            cmd: MemCmd = yield kernel.streams.dma_cmd_out.get()
            guard = kernel.guard
            epoch = guard.epoch if guard is not None else 0
            if guard is not None \
                    and not guard.admit_dma(cmd.vaddr, cmd.length,
                                            cmd.is_write):
                if cmd.is_write:
                    yield kernel.streams.dma_data_out.get()  # discard
                else:
                    yield kernel.streams.dma_data_in.put(ABORT_SENTINEL)
                continue
            if guard is not None and self.check is not None:
                self.check.on_kernel_dma(self, kernel, cmd)
            if cmd.is_write:
                data = yield kernel.streams.dma_data_out.get()
                if len(data) != cmd.length:
                    raise ValueError(
                        f"kernel {kernel.name}: DMA write length mismatch "
                        f"({len(data)} != {cmd.length})")
                # Posted write: do not stall the kernel on completion.
                self.env.process(
                    self.dma.write(cmd.vaddr, data, sequential=sequential))
            else:
                data = yield from self.dma.read(cmd.vaddr, cmd.length,
                                                sequential=sequential)
                if guard is not None and guard.epoch != epoch:
                    continue  # invocation aborted mid-read: stale data
                yield kernel.streams.dma_data_in.put(data)

    def _kernel_tx_adapter(self, kernel: StromKernel):
        """Turn the kernel's roceMetaOut/roceDataOut into RDMA WRITEs."""
        while True:
            meta: RoceMeta = yield kernel.streams.roce_meta_out.get()
            data: bytes = yield kernel.streams.roce_data_out.get()
            if len(data) != meta.length:
                raise ValueError(
                    f"kernel {kernel.name}: TX length mismatch "
                    f"({len(data)} != {meta.length})")
            if meta.qpn == LOCAL_QPN:
                # Local invocation: the "response" lands in local memory.
                self.env.process(
                    self.dma.write(meta.target_vaddr, data))
                continue
            self._post_send(NicCommand(
                kind="write", qpn=meta.qpn, raddr=meta.target_vaddr,
                length=meta.length, payload_inline=data))
