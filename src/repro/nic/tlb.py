"""The NIC's Translation Lookaside Buffer (Section 4.2).

Each entry maps one 2 MB huge page to a 48-bit physical address; 16,384
entries cover 32 GB of pinned host memory.  The TLB is populated once by
the driver and never misses at run time — a miss is a configuration error.
DMA commands that cross a huge-page boundary are split into multiple
commands, none of which crosses a boundary.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..config import NicConfig


class TlbMissError(Exception):
    """Access to a virtual page the driver never pinned."""


class Tlb:
    """Fixed-capacity virtual-page -> physical-address table."""

    def __init__(self, config: NicConfig) -> None:
        self.page_bytes = config.page_bytes
        self.capacity = config.tlb_entries
        self._entries: Dict[int, int] = {}
        self.lookups = 0
        self.splits = 0
        # One-entry last-translation cache: sequential DMA (and the burst
        # fast path's chunk loop) re-translates the same huge page for
        # ~32k consecutive MTUs, so the repeat hit skips the table probe.
        self._last_vpn: int = -1
        self._last_base: int = 0
        self.cache_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def addressable_bytes(self) -> int:
        """Host memory reachable through the current entries."""
        return len(self._entries) * self.page_bytes

    def populate(self, vpn: int, physical_base: int) -> None:
        """Install one entry (driver path via the Controller)."""
        if len(self._entries) >= self.capacity and vpn not in self._entries:
            raise ValueError(f"TLB full ({self.capacity} entries)")
        if physical_base % self.page_bytes:
            raise ValueError("physical base must be huge-page aligned")
        if physical_base >= (1 << 48):
            raise ValueError("physical address exceeds 48 bits")
        self._entries[vpn] = physical_base
        # The driver may remap a pinned page: never serve a stale base.
        self._last_vpn = -1

    def populate_from(self, page_table: Dict[int, int]) -> None:
        """Bulk-install the driver's vpn -> physical-base map."""
        for vpn, base in page_table.items():
            self.populate(vpn, base)

    def translate(self, vaddr: int) -> int:
        """Translate one virtual address; raises :class:`TlbMissError`."""
        self.lookups += 1
        vpn, offset = divmod(vaddr, self.page_bytes)
        if vpn == self._last_vpn:
            self.cache_hits += 1
            return self._last_base + offset
        base = self._entries.get(vpn)
        if base is None:
            raise TlbMissError(f"no TLB entry for vaddr {vaddr:#x}")
        self._last_vpn = vpn
        self._last_base = base
        return base + offset

    def split_command(self, vaddr: int,
                      length: int) -> Iterator[Tuple[int, int]]:
        """Split a DMA command into (physical, length) pieces, none
        crossing a 2 MB page boundary (Section 4.2)."""
        if length <= 0:
            raise ValueError("DMA length must be positive")
        cursor = vaddr
        remaining = length
        first = True
        while remaining > 0:
            offset = cursor % self.page_bytes
            chunk = min(remaining, self.page_bytes - offset)
            if not first:
                self.splits += 1
            yield self.translate(cursor), chunk
            cursor += chunk
            remaining -= chunk
            first = False
