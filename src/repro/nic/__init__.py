"""NIC assembly: TLB, DMA engine, MMIO command path, and the StRoM NIC."""

from .dma import DmaCommand, DmaEngine, MmioPath, PCIE_TLP_OVERHEAD_BYTES
from .nic import NicCommand, StromNic
from .tlb import Tlb, TlbMissError

__all__ = [
    "DmaCommand",
    "DmaEngine",
    "MmioPath",
    "NicCommand",
    "PCIE_TLP_OVERHEAD_BYTES",
    "StromNic",
    "Tlb",
    "TlbMissError",
]
