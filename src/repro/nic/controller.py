"""The Controller: the NIC's MMIO register file (Section 4.3).

The driver maps the PCIe BAR into user space (``/dev/roce`` + mmap);
register *writes* become commands to the RoCE stack, the kernels, or the
TLB (handled by :class:`MmioPath` + :meth:`StromNic.submit`), and
register *reads* return status and performance metrics.  This module
implements the read side: a stable register map over the NIC's counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

if TYPE_CHECKING:  # pragma: no cover
    from .nic import StromNic


class UnknownRegisterError(KeyError):
    """Read of an unmapped BAR offset."""


#: Register offsets (8-byte registers, BAR0).
REG_PACKETS_SENT = 0x00
REG_PACKETS_RECEIVED = 0x08
REG_PAYLOAD_BYTES_SENT = 0x10
REG_PAYLOAD_BYTES_RECEIVED = 0x18
REG_ACKS_SENT = 0x20
REG_NAKS_SENT = 0x28
REG_RETRANSMITS = 0x30
REG_PACKETS_DROPPED = 0x38
REG_DUPLICATES = 0x40
REG_DMA_READS = 0x48
REG_DMA_WRITES = 0x50
REG_DMA_BYTES_READ = 0x58
REG_DMA_BYTES_WRITTEN = 0x60
REG_TLB_LOOKUPS = 0x68
REG_TLB_SPLITS = 0x70
REG_TLB_ENTRIES = 0x78
REG_QP_COUNT = 0x80
REG_KERNEL_COUNT = 0x88
REG_RPC_MATCHES = 0x90
REG_RPC_MISSES = 0x98
REG_TIMER_EXPIRATIONS = 0xA0
REG_TIMER_RECOVERIES = 0xA8
REG_TIMER_EXHAUSTIONS = 0xB0
REG_QP_ERRORS = 0xB8
REG_CMDS_REJECTED = 0xC0
REG_CRASH_DROPS = 0xC8
REG_RPC_QUARANTINED = 0xD0

#: Human-readable names, in register order (the driver's debugfs view).
REGISTER_NAMES = {
    REG_PACKETS_SENT: "packets_sent",
    REG_PACKETS_RECEIVED: "packets_received",
    REG_PAYLOAD_BYTES_SENT: "payload_bytes_sent",
    REG_PAYLOAD_BYTES_RECEIVED: "payload_bytes_received",
    REG_ACKS_SENT: "acks_sent",
    REG_NAKS_SENT: "naks_sent",
    REG_RETRANSMITS: "retransmits",
    REG_PACKETS_DROPPED: "packets_dropped",
    REG_DUPLICATES: "duplicates",
    REG_DMA_READS: "dma_reads",
    REG_DMA_WRITES: "dma_writes",
    REG_DMA_BYTES_READ: "dma_bytes_read",
    REG_DMA_BYTES_WRITTEN: "dma_bytes_written",
    REG_TLB_LOOKUPS: "tlb_lookups",
    REG_TLB_SPLITS: "tlb_splits",
    REG_TLB_ENTRIES: "tlb_entries",
    REG_QP_COUNT: "qp_count",
    REG_KERNEL_COUNT: "kernel_count",
    REG_RPC_MATCHES: "rpc_matches",
    REG_RPC_MISSES: "rpc_misses",
    REG_TIMER_EXPIRATIONS: "timer_expirations",
    REG_TIMER_RECOVERIES: "timer_recoveries",
    REG_TIMER_EXHAUSTIONS: "timer_exhaustions",
    REG_QP_ERRORS: "qp_errors",
    REG_CMDS_REJECTED: "cmds_rejected",
    REG_CRASH_DROPS: "crash_drops",
    REG_RPC_QUARANTINED: "rpc_quarantined",
}


class Controller:
    """Read-side register file over a :class:`StromNic`'s counters."""

    def __init__(self, nic: "StromNic") -> None:
        self.nic = nic
        self._readers: Dict[int, Callable[[], int]] = {
            REG_PACKETS_SENT: lambda: int(nic.packets_sent),
            REG_PACKETS_RECEIVED: lambda: int(nic.packets_received),
            REG_PAYLOAD_BYTES_SENT: lambda: int(nic.payload_bytes_sent),
            REG_PAYLOAD_BYTES_RECEIVED:
                lambda: int(nic.payload_bytes_received),
            REG_ACKS_SENT: lambda: int(nic.acks_sent),
            REG_NAKS_SENT: lambda: int(nic.naks_sent),
            REG_RETRANSMITS: lambda: int(nic.retransmitted),
            REG_PACKETS_DROPPED: lambda: int(nic.packets_dropped),
            REG_DUPLICATES: lambda: int(nic.duplicates),
            REG_DMA_READS: lambda: int(nic.dma.reads),
            REG_DMA_WRITES: lambda: int(nic.dma.writes),
            REG_DMA_BYTES_READ: lambda: int(nic.dma.bytes_read),
            REG_DMA_BYTES_WRITTEN: lambda: int(nic.dma.bytes_written),
            REG_TLB_LOOKUPS: lambda: nic.tlb.lookups,
            REG_TLB_SPLITS: lambda: nic.tlb.splits,
            REG_TLB_ENTRIES: lambda: len(nic.tlb),
            REG_QP_COUNT: lambda: len(nic.qps),
            REG_KERNEL_COUNT: lambda: len(nic.registry),
            REG_RPC_MATCHES: lambda: int(nic.registry.matches),
            REG_RPC_MISSES: lambda: int(nic.registry.misses),
            REG_TIMER_EXPIRATIONS: lambda: int(nic.timer.expirations),
            REG_TIMER_RECOVERIES: lambda: int(nic.timer.recoveries),
            REG_TIMER_EXHAUSTIONS: lambda: int(nic.timer.exhaustions),
            REG_QP_ERRORS: lambda: int(nic.qp_errors),
            REG_CMDS_REJECTED: lambda: int(nic.commands_rejected),
            REG_CRASH_DROPS: lambda: int(nic.crash_drops),
            REG_RPC_QUARANTINED: lambda: int(nic.registry.quarantined),
        }

    def read_register(self, offset: int) -> int:
        """Immediate register read (the MMIO latency is charged by the
        host-side helper)."""
        reader = self._readers.get(offset)
        if reader is None:
            raise UnknownRegisterError(f"no register at BAR offset "
                                       f"{offset:#x}")
        return reader()

    def snapshot(self) -> Dict[str, int]:
        """All registers by name (debugfs-style dump)."""
        return {REGISTER_NAMES[offset]: self.read_register(offset)
                for offset in sorted(self._readers)}
