"""A Pilaf-style remote key-value store (Sections 6.2/6.3).

Server-side layout mirrors Pilaf: one memory region of fixed-size (64 B)
hash-table entries and a second region holding the values.  Entries are
laid out to be traversal-kernel compatible (keys 8 B, fields 4 B aligned):

====  =====================  ========================================
pos   field                  traversal parameter
====  =====================  ========================================
0     key (8 B)              key_mask = 1
2     value pointer (8 B)    value_ptr_position = 2 (absolute)
4     next pointer (8 B)     next_element_ptr_position = 4 (chaining)
6     value length (4 B)     (client-known in the fixed-size benches)
====  =====================  ========================================

Clients resolve GETs three ways, matching the paper's comparison:
one-sided RDMA READs (entry read, chain follows, value read — each a
network round trip), the StRoM traversal kernel (single round trip), or
a TCP RPC executed by the server CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algos.hashing import fnv1a64_int
from ..core.guard import InvocationBudget, ProtectionDomain
from ..core.rpc import RpcOpcode, is_rpc_error
from ..host.node import Fabric, HostNode
from ..host.tcp_rpc import TcpRpcChannel
from ..kernels.traversal import (
    NOT_FOUND_MARKER,
    PredicateOp,
    TraversalKernel,
    TraversalParams,
)

ENTRY_BYTES = 64
_KEY_POS = 0          # byte offset 0
_VALUE_PTR_POS = 2    # byte offset 8
_NEXT_PTR_POS = 4     # byte offset 16
_VALUE_LEN_OFF = 24   # byte offset of the 4 B length field


def pack_entry(key: int, value_ptr: int, next_ptr: int,
               value_len: int) -> bytes:
    blob = (key.to_bytes(8, "little")
            + value_ptr.to_bytes(8, "little")
            + next_ptr.to_bytes(8, "little")
            + value_len.to_bytes(4, "little"))
    return blob.ljust(ENTRY_BYTES, b"\x00")


def unpack_entry(data: bytes):
    key = int.from_bytes(data[0:8], "little")
    value_ptr = int.from_bytes(data[8:16], "little")
    next_ptr = int.from_bytes(data[16:24], "little")
    value_len = int.from_bytes(data[24:28], "little")
    return key, value_ptr, next_ptr, value_len


#: Sentinel key marking an empty hash slot.
EMPTY_KEY = 0


class KvServer:
    """Server-side store: owns the entry and value regions."""

    def __init__(self, node: HostNode, num_slots: int = 1024,
                 value_capacity: int = 4 * 1024 * 1024,
                 chain_capacity: int = 4096) -> None:
        if num_slots < 1:
            raise ValueError("need at least one slot")
        self.node = node
        self.num_slots = num_slots
        self.entries = node.alloc(num_slots * ENTRY_BYTES, "kv.entries")
        self.chain = node.alloc(chain_capacity * ENTRY_BYTES, "kv.chain")
        self.values = node.alloc(value_capacity, "kv.values")
        self._next_chain_slot = 0
        self._value_cursor = 0
        self.size = 0

    def slot_vaddr(self, key: int) -> int:
        slot = fnv1a64_int(key) % self.num_slots
        return self.entries.vaddr + slot * ENTRY_BYTES

    def _store_value(self, value: bytes) -> int:
        if self._value_cursor + len(value) > self.values.nbytes:
            raise MemoryError("value region exhausted")
        vaddr = self.values.vaddr + self._value_cursor
        self.node.space.write(vaddr, value)
        self._value_cursor += len(value)
        return vaddr

    def insert(self, key: int, value: bytes) -> None:
        """Insert (host-side, as Pilaf does: writes go through the server
        CPU; only GETs are one-sided)."""
        if key == EMPTY_KEY:
            raise ValueError("key 0 is reserved as the empty marker")
        space = self.node.space
        slot_addr = self.slot_vaddr(key)
        entry = space.read(slot_addr, ENTRY_BYTES)
        existing_key, _, next_ptr, _ = unpack_entry(entry)
        value_ptr = self._store_value(value)
        if existing_key == EMPTY_KEY:
            space.write(slot_addr,
                        pack_entry(key, value_ptr, 0, len(value)))
        else:
            # Chain: new element inserted directly behind the head.
            if self._next_chain_slot * ENTRY_BYTES >= self.chain.nbytes:
                raise MemoryError("chain region exhausted")
            chain_addr = self.chain.vaddr \
                + self._next_chain_slot * ENTRY_BYTES
            self._next_chain_slot += 1
            space.write(chain_addr,
                        pack_entry(key, value_ptr, next_ptr, len(value)))
            head_key, head_ptr, _, head_len = unpack_entry(entry)
            space.write(slot_addr,
                        pack_entry(head_key, head_ptr, chain_addr,
                                   head_len))
        self.size += 1

    def lookup_local(self, key: int) -> Optional[bytes]:
        """Host-side lookup (ground truth for tests, and the work the
        TCP RPC handler performs)."""
        space = self.node.space
        address = self.slot_vaddr(key)
        hops = 0
        while address != 0 and hops < 4096:
            entry_key, value_ptr, next_ptr, value_len = unpack_entry(
                space.read(address, ENTRY_BYTES))
            if entry_key == key:
                return space.read(value_ptr, value_len)
            address = next_ptr
            hops += 1
        return None

    def slot_is_empty(self, key: int) -> bool:
        """Whether the key's hash slot has never been filled."""
        entry = self.node.space.read(self.slot_vaddr(key), ENTRY_BYTES)
        return unpack_entry(entry)[0] == EMPTY_KEY

    def chain_length(self, key: int) -> int:
        """Elements probed to find ``key`` (collision depth); 0 when the
        slot is empty."""
        space = self.node.space
        address = self.slot_vaddr(key)
        hops = 0
        while address != 0 and hops < 4096:
            entry_key, _, next_ptr, _ = unpack_entry(
                space.read(address, ENTRY_BYTES))
            if entry_key == EMPTY_KEY:
                return hops
            hops += 1
            if entry_key == key:
                return hops
            address = next_ptr
        return hops

    def protection_domain(self) -> ProtectionDomain:
        """The regions a GET-serving kernel may read: entries, chain
        and values (one-sided GETs never DMA-write host memory)."""
        pd = ProtectionDomain()
        pd.allow_region(self.entries)
        pd.allow_region(self.chain)
        pd.allow_region(self.values)
        return pd

    def deploy_traversal_kernel(
            self,
            protection: Optional[ProtectionDomain] = None,
            budget: Optional[InvocationBudget] = None,
            quarantine_threshold: int = 3) -> TraversalKernel:
        kernel = TraversalKernel(self.node.env, self.node.nic.config)
        self.node.nic.deploy_kernel(
            RpcOpcode.TRAVERSAL, kernel, protection=protection,
            budget=budget, quarantine_threshold=quarantine_threshold)
        return kernel


@dataclass
class GetResult:
    value: Optional[bytes]
    latency_ps: int
    network_round_trips: int
    #: RPC error completion found in the response buffer (e.g. the
    #: target kernel aborted or is quarantined), else None.
    rpc_error: Optional[int] = None


class KvClient:
    """Client-side GET strategies over one fabric."""

    def __init__(self, fabric: Fabric, server: KvServer,
                 tcp: Optional[TcpRpcChannel] = None) -> None:
        self.fabric = fabric
        self.server = server
        self.tcp = tcp
        node = fabric.client
        self._entry_buf = node.alloc(ENTRY_BYTES * 16, "kv.entry_buf")
        self._value_buf = node.alloc(64 * 1024, "kv.value_buf")

    # ------------------------------------------------------------------
    def get_via_reads(self, key: int):
        """One-sided GET: READ the entry, follow the chain with further
        READs, then READ the value — one round trip per step (Pilaf)."""
        env = self.fabric.env
        client = self.fabric.client
        start = env.now
        round_trips = 0
        address = self.server.slot_vaddr(key)
        value: Optional[bytes] = None
        while address != 0:
            yield from client.read_sync(self.fabric.client_qpn,
                                        self._entry_buf.vaddr, address,
                                        ENTRY_BYTES)
            round_trips += 1
            entry_key, value_ptr, next_ptr, value_len = unpack_entry(
                client.space.read(self._entry_buf.vaddr, ENTRY_BYTES))
            if entry_key == key:
                yield from client.read_sync(self.fabric.client_qpn,
                                            self._value_buf.vaddr,
                                            value_ptr, value_len)
                round_trips += 1
                value = client.space.read(self._value_buf.vaddr, value_len)
                break
            address = next_ptr
        return GetResult(value=value, latency_ps=env.now - start,
                         network_round_trips=round_trips)

    # ------------------------------------------------------------------
    def get_via_strom(self, key: int, value_size: int):
        """Single-round-trip GET through the traversal kernel."""
        env = self.fabric.env
        client = self.fabric.client
        start = env.now
        params = TraversalParams(
            response_vaddr=self._value_buf.vaddr,
            remote_address=self.server.slot_vaddr(key),
            value_size=value_size, key=key, key_mask=1,
            predicate_op=PredicateOp.EQUAL,
            value_ptr_position=_VALUE_PTR_POS, is_relative_position=False,
            next_element_ptr_position=_NEXT_PTR_POS,
            next_element_ptr_valid=True)
        yield from client.post_rpc(self.fabric.client_qpn,
                                   RpcOpcode.TRAVERSAL, params.pack())
        yield from client.wait_for_data(self._value_buf.vaddr,
                                        min(value_size, 8))
        data = client.space.read(self._value_buf.vaddr, value_size)
        head = int.from_bytes(data[:8], "little")
        if is_rpc_error(head):
            # The kernel aborted (protection/watchdog/quarantine/bad
            # params) and wrote an error completion instead of a value.
            return GetResult(value=None, latency_ps=env.now - start,
                             network_round_trips=1, rpc_error=head)
        not_found = head == NOT_FOUND_MARKER
        return GetResult(value=None if not_found else data,
                         latency_ps=env.now - start,
                         network_round_trips=1)

    # ------------------------------------------------------------------
    def get_via_tcp(self, key: int):
        """rpcgen-style RPC: the server CPU walks the chain (Figure 7)."""
        if self.tcp is None:
            raise RuntimeError("no TCP channel configured")
        env = self.fabric.env
        start = env.now
        hops = self.server.chain_length(key)
        value = self.server.lookup_local(key)
        response_bytes = len(value) if value is not None else 8
        result = yield from self.tcp.call(
            request_bytes=32,
            server_work=self.tcp.linked_list_handler(hops, response_bytes))
        return GetResult(value=value, latency_ps=env.now - start,
                         network_round_trips=1)
