"""A disaggregated remote object store (the introduction's use case).

StRoM's pitch: "disaggregated memory, remote memory, network attached
storage" served by one-sided operations plus NIC kernels.  This store
keeps CRC64-sealed objects in server memory behind a fixed directory:

- directory slot (32 B): object address, sealed size, version, valid flag
- object heap: sealed objects (payload + trailing CRC64)

Clients GET objects in **one network round trip** through the
consistency kernel — the remote NIC re-reads locally until the checksum
verifies, so racing updates never leak torn objects.  Updates go through
the server CPU (as writes do in Pilaf/FaRM) and bump the version.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..algos.crc import ChecksummedObject
from ..core.rpc import RpcOpcode
from ..host.node import Fabric, HostNode
from ..kernels.consistency import (
    ConsistencyKernel,
    ConsistencyParams,
    INCONSISTENT_MARKER,
)

_DIRECTORY_SLOT = struct.Struct("<QIIQQ")  # addr, size, version, valid, pad
DIRECTORY_SLOT_BYTES = 32


@dataclass(frozen=True)
class DirectoryEntry:
    """Client-visible object metadata."""

    object_id: int
    vaddr: int
    sealed_size: int
    version: int
    valid: bool


class RemoteObjectStore:
    """Server side: directory + heap + the consistency kernel."""

    def __init__(self, node: HostNode, max_objects: int = 1024,
                 heap_bytes: int = 16 * 1024 * 1024,
                 failure_injector=None) -> None:
        if max_objects < 1:
            raise ValueError("need at least one directory slot")
        self.node = node
        self.max_objects = max_objects
        self.directory = node.alloc(max_objects * DIRECTORY_SLOT_BYTES,
                                    "store.directory")
        self.heap = node.alloc(heap_bytes, "store.heap")
        self._heap_cursor = 0
        self.kernel = ConsistencyKernel(node.env, node.nic.config,
                                        failure_injector=failure_injector)
        node.nic.deploy_kernel(RpcOpcode.CONSISTENCY, self.kernel)

    # ------------------------------------------------------------------
    # Directory plumbing
    # ------------------------------------------------------------------
    def _slot_vaddr(self, object_id: int) -> int:
        if not 0 <= object_id < self.max_objects:
            raise KeyError(f"object id {object_id} out of range")
        return self.directory.vaddr + object_id * DIRECTORY_SLOT_BYTES

    def _read_slot(self, object_id: int) -> DirectoryEntry:
        raw = self.node.space.read(self._slot_vaddr(object_id),
                                   DIRECTORY_SLOT_BYTES)
        vaddr, size, version, valid, _pad = _DIRECTORY_SLOT.unpack(raw)
        return DirectoryEntry(object_id=object_id, vaddr=vaddr,
                              sealed_size=size, version=version,
                              valid=bool(valid))

    def _write_slot(self, object_id: int, vaddr: int, size: int,
                    version: int, valid: bool) -> None:
        self.node.space.write(
            self._slot_vaddr(object_id),
            _DIRECTORY_SLOT.pack(vaddr, size, version, int(valid), 0))

    # ------------------------------------------------------------------
    # Server-side operations (through the local CPU, like Pilaf PUTs)
    # ------------------------------------------------------------------
    def put(self, object_id: int, payload: bytes) -> DirectoryEntry:
        """Create or replace an object; returns its new directory entry."""
        sealed = ChecksummedObject.seal(payload)
        old = self._read_slot(object_id)
        if old.valid and old.sealed_size >= len(sealed):
            vaddr = old.vaddr  # update in place
        else:
            if self._heap_cursor + len(sealed) > self.heap.nbytes:
                raise MemoryError("object heap exhausted")
            vaddr = self.heap.vaddr + self._heap_cursor
            self._heap_cursor += len(sealed)
        self.node.space.write(vaddr, sealed)
        version = old.version + 1 if old.valid else 1
        self._write_slot(object_id, vaddr, len(sealed), version, True)
        return self._read_slot(object_id)

    def delete(self, object_id: int) -> None:
        entry = self._read_slot(object_id)
        if entry.valid:
            self._write_slot(object_id, 0, 0, entry.version, False)

    def corrupt_for_testing(self, object_id: int) -> None:
        """Flip a payload byte without re-sealing (simulates a torn or
        damaged object for recovery tests)."""
        entry = self._read_slot(object_id)
        if not entry.valid:
            raise KeyError("no such object")
        byte = self.node.space.read(entry.vaddr, 1)
        self.node.space.write(entry.vaddr, bytes([byte[0] ^ 0xFF]))

    def lookup(self, object_id: int) -> Optional[DirectoryEntry]:
        entry = self._read_slot(object_id)
        return entry if entry.valid else None


class ObjectStoreClient:
    """Client side: directory caching + single-round-trip consistent GETs."""

    def __init__(self, fabric: Fabric, store: RemoteObjectStore) -> None:
        self.fabric = fabric
        self.store = store
        node = fabric.client
        self._dir_buf = node.alloc(DIRECTORY_SLOT_BYTES * 4, "cli.dir")
        self._obj_buf = node.alloc(64 * 1024, "cli.obj")
        self._cache: dict = {}

    def fetch_directory_entry(self, object_id: int):
        """One-sided READ of the directory slot (cached thereafter)."""
        client = self.fabric.client
        remote = self.store._slot_vaddr(object_id)
        yield from client.read_sync(self.fabric.client_qpn,
                                    self._dir_buf.vaddr, remote,
                                    DIRECTORY_SLOT_BYTES)
        raw = client.space.read(self._dir_buf.vaddr, DIRECTORY_SLOT_BYTES)
        vaddr, size, version, valid, _pad = _DIRECTORY_SLOT.unpack(raw)
        entry = DirectoryEntry(object_id=object_id, vaddr=vaddr,
                               sealed_size=size, version=version,
                               valid=bool(valid))
        self._cache[object_id] = entry
        return entry

    def get(self, object_id: int, refresh_directory: bool = False):
        """Consistent GET: returns the verified payload bytes, or None
        if the object does not exist / cannot be verified."""
        client = self.fabric.client
        entry = self._cache.get(object_id)
        if entry is None or refresh_directory:
            entry = yield from self.fetch_directory_entry(object_id)
        if not entry.valid:
            return None
        params = ConsistencyParams(response_vaddr=self._obj_buf.vaddr,
                                   object_vaddr=entry.vaddr,
                                   object_size=entry.sealed_size,
                                   max_retries=16)
        yield from client.post_rpc(self.fabric.client_qpn,
                                   RpcOpcode.CONSISTENCY, params.pack())
        yield from client.wait_for_data(self._obj_buf.vaddr, 8)
        sealed = client.space.read(self._obj_buf.vaddr, entry.sealed_size)
        marker = int.from_bytes(sealed[:8], "little")
        if marker == INCONSISTENT_MARKER:
            return None
        if not ChecksummedObject.verify(sealed):
            return None  # stale directory: size changed under us
        return ChecksummedObject.payload(sealed)
