"""Applications built on the StRoM public API.

- :mod:`repro.apps.kvstore` — Pilaf-style key-value store (Sections
  6.2/6.3): GETs via one-sided READs, the traversal kernel, or TCP RPC.
- :mod:`repro.apps.join` — distributed radix join shuffling its build
  relation through the shuffle kernel (the Section 6.4 use case).
- :mod:`repro.apps.object_store` — disaggregated remote object store
  with single-round-trip consistency-checked GETs (the intro use case).
"""

from .join import DistributedRadixJoin, JoinResult, reference_join_count
from .kvstore import (
    ENTRY_BYTES,
    GetResult,
    KvClient,
    KvServer,
    pack_entry,
    unpack_entry,
)
from .object_store import (
    DIRECTORY_SLOT_BYTES,
    DirectoryEntry,
    ObjectStoreClient,
    RemoteObjectStore,
)

__all__ = [
    "DIRECTORY_SLOT_BYTES",
    "DirectoryEntry",
    "DistributedRadixJoin",
    "ENTRY_BYTES",
    "GetResult",
    "JoinResult",
    "KvClient",
    "KvServer",
    "ObjectStoreClient",
    "RemoteObjectStore",
    "pack_entry",
    "reference_join_count",
    "unpack_entry",
]
