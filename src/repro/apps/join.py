"""Distributed radix join with on-NIC shuffling (the Section 6.4 use
case end to end).

The paper motivates the shuffle kernel with distributed database joins
(Barthels et al.): the build relation is shuffled across the network
into radix partitions, the probe relation is partitioned locally, and
each partition pair is joined independently with cache-friendly state.

:class:`DistributedRadixJoin` runs the full pipeline over the simulated
fabric: the client streams its relation through the StRoM shuffle kernel
(tuples land pre-partitioned in server memory), the server partitions
its local relation on the CPU, and the per-partition hash join executes
for real — producing the exact multiset join cardinality — while the CPU
cost model charges the build/probe time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

import numpy as np

from ..algos.hashing import radix_hash_array
from ..core.rpc import RpcOpcode
from ..host.baselines import SoftwarePartitioner
from ..host.cpu import CpuModel
from ..host.node import Fabric
from ..kernels.shuffle import ShuffleKernel, ShuffleParams, pack_descriptor
from ..sim import timebase
from ..sim.timebase import NS


@dataclass
class JoinResult:
    """Outcome of one distributed join."""

    matches: int                 # |{(r, s) : r.key == s.key}|
    build_tuples: int
    probe_tuples: int
    shuffle_seconds: float       # network + on-NIC partitioning
    local_partition_seconds: float
    join_seconds: float          # build + probe over all partitions
    partitions: int

    @property
    def total_seconds(self) -> float:
        return (self.shuffle_seconds + self.local_partition_seconds
                + self.join_seconds)


#: CPU cost per build tuple (hash-table insert in a cache-resident
#: partition) and per probe tuple (lookup), per Balkesen et al.-style
#: radix joins on this class of CPU.
BUILD_NS_PER_TUPLE = 1.5
PROBE_NS_PER_TUPLE = 1.1


class DistributedRadixJoin:
    """Join the client's relation against the server's, shuffling the
    build side through the StRoM shuffle kernel."""

    def __init__(self, fabric: Fabric, partition_bits: int,
                 cpu: CpuModel) -> None:
        if not 0 <= partition_bits <= 10:
            raise ValueError("at most 1024 partitions")
        self.fabric = fabric
        self.partition_bits = partition_bits
        self.cpu = cpu
        self.kernel = ShuffleKernel(fabric.env,
                                    fabric.server.nic.config)
        fabric.server.nic.deploy_kernel(RpcOpcode.SHUFFLE, self.kernel,
                                        sequential_dma=False)

    @property
    def num_partitions(self) -> int:
        return 1 << self.partition_bits

    def execute(self, build_keys: np.ndarray, probe_keys: np.ndarray):
        """Process helper (``yield from`` inside a simulation process).

        ``build_keys`` live in client memory and are shuffled over the
        network; ``probe_keys`` are the server's local relation.
        Returns a :class:`JoinResult`.
        """
        env = self.fabric.env
        client, server = self.fabric.client, self.fabric.server
        build_keys = np.ascontiguousarray(build_keys, dtype=np.uint64)
        probe_keys = np.ascontiguousarray(probe_keys, dtype=np.uint64)
        total_bytes = build_keys.size * 8

        # ---------------- phase 1: shuffle the build side -------------
        capacity = total_bytes * 2 // self.num_partitions + 4096
        regions = [server.alloc(capacity, f"join.part{i}")
                   for i in range(self.num_partitions)]
        table = server.alloc(
            max(4096, self.num_partitions * 16), "join.histogram")
        server.space.write(table.vaddr, b"".join(
            pack_descriptor(r.vaddr, capacity) for r in regions))
        src = client.alloc(total_bytes, "join.build")
        client.space.write(src.vaddr, build_keys.tobytes())
        response = client.alloc(4096, "join.resp")

        shuffle_start = env.now
        params = ShuffleParams(response_vaddr=response.vaddr,
                               descriptor_table_vaddr=table.vaddr,
                               partition_bits=self.partition_bits,
                               total_bytes=total_bytes)
        yield from client.post_rpc(self.fabric.client_qpn,
                                   RpcOpcode.SHUFFLE, params.pack())
        yield from client.post_rpc_write(self.fabric.client_qpn,
                                         RpcOpcode.SHUFFLE, src.vaddr,
                                         total_bytes)
        yield from client.wait_for_data(response.vaddr, 16)
        shuffled, overflowed = struct.unpack(
            "<QQ", client.space.read(response.vaddr, 16))
        if overflowed:
            raise RuntimeError(f"{overflowed} tuples overflowed their "
                               "partition regions")
        shuffle_seconds = timebase.to_seconds(env.now - shuffle_start)

        # ---------------- phase 2: partition the probe side locally ---
        partitioner = SoftwarePartitioner(self.cpu, self.partition_bits)
        plan = partitioner.partition(probe_keys)
        yield server.cpu_delay(plan.cpu_time_ps)
        local_seconds = timebase.to_seconds(plan.cpu_time_ps)

        # ---------------- phase 3: per-partition hash join ------------
        mask = np.uint64(self.num_partitions - 1)
        build_counts = np.bincount(
            radix_hash_array(build_keys, self.partition_bits)
            .astype(np.int64), minlength=self.num_partitions)
        matches = 0
        for index in range(self.num_partitions):
            count = int(build_counts[index])
            if count == 0:
                build_part = np.empty(0, dtype=np.uint64)
            else:
                raw = server.space.read(regions[index].vaddr, count * 8)
                build_part = np.frombuffer(raw, dtype="<u8")
            probe_part = plan.partitions[index]
            matches += _hash_join_count(build_part, probe_part)
        join_ps = int((build_keys.size * BUILD_NS_PER_TUPLE
                       + probe_keys.size * PROBE_NS_PER_TUPLE) * NS)
        yield server.cpu_delay(join_ps)

        return JoinResult(
            matches=matches,
            build_tuples=int(build_keys.size),
            probe_tuples=int(probe_keys.size),
            shuffle_seconds=shuffle_seconds,
            local_partition_seconds=local_seconds,
            join_seconds=timebase.to_seconds(join_ps),
            partitions=self.num_partitions)


def _hash_join_count(build: np.ndarray, probe: np.ndarray) -> int:
    """Exact multiset equi-join cardinality of two key arrays."""
    if build.size == 0 or probe.size == 0:
        return 0
    build_keys, build_counts = np.unique(build, return_counts=True)
    probe_keys, probe_counts = np.unique(probe, return_counts=True)
    common, build_idx, probe_idx = np.intersect1d(
        build_keys, probe_keys, assume_unique=True, return_indices=True)
    del common
    return int(np.sum(build_counts[build_idx].astype(np.int64)
                      * probe_counts[probe_idx].astype(np.int64)))


def reference_join_count(build: np.ndarray, probe: np.ndarray) -> int:
    """Brute-force oracle for tests."""
    from collections import Counter as PyCounter
    build_histogram = PyCounter(build.tolist())
    probe_histogram = PyCounter(probe.tolist())
    return sum(count * probe_histogram.get(key, 0)
               for key, count in build_histogram.items())
