"""StRoM: Smart Remote Memory (EuroSys '20) — full-system reproduction.

A discrete-event, cycle-aware simulation of the StRoM FPGA-based RoCE v2
SmartNIC and everything it depends on: the RoCE v2 protocol engine, PCIe
DMA path, NIC TLB, host memory, and host software — plus the paper's four
programmable kernels (traversal, consistency, shuffle, HyperLogLog), the
Listing-2 GET kernel, all published baselines, and one experiment harness
per evaluation table/figure.

Quick start::

    from repro import Simulator, build_fabric, RpcOpcode
    from repro.kernels import TraversalKernel

    env = Simulator()
    fabric = build_fabric(env)
    kernel = TraversalKernel(env, fabric.server.nic.config)
    fabric.server.nic.deploy_kernel(RpcOpcode.TRAVERSAL, kernel)
    ...

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from . import algos, apps, cluster, config, fpga, host, kernels
from . import memory, net, nic, roce, sim
from .config import (
    HOST_DEFAULT,
    NIC_10G,
    NIC_100G,
    HostConfig,
    NicConfig,
    scaled_config,
)
from .core import RpcOpcode, RpcPreamble, StromKernel, pack_params
from .host import Fabric, HostNode, build_fabric
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Fabric",
    "HOST_DEFAULT",
    "HostConfig",
    "HostNode",
    "NIC_100G",
    "NIC_10G",
    "NicConfig",
    "RpcOpcode",
    "RpcPreamble",
    "Simulator",
    "StromKernel",
    "algos",
    "apps",
    "build_fabric",
    "cluster",
    "config",
    "fpga",
    "host",
    "kernels",
    "memory",
    "net",
    "nic",
    "pack_params",
    "roce",
    "scaled_config",
    "sim",
    "__version__",
]
